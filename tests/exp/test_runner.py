"""Tests for the sweep runner: parity, caching, determinism."""

from __future__ import annotations

import json
import os

import pytest

from repro.exp import get_scenario, run_scenario, sweep_table
from repro.exp.runner import result_path


class TestSerialParallelParity:
    def test_smoke_byte_identical_across_worker_counts(self, tmp_path):
        serial = run_scenario("smoke", workers=1, cache_dir=str(tmp_path / "s"))
        parallel = run_scenario("smoke", workers=2, cache_dir=str(tmp_path / "p"))
        assert serial.to_json() == parallel.to_json()
        with open(serial.cache_path, "rb") as a, open(parallel.cache_path, "rb") as b:
            assert a.read() == b.read()

    def test_multifault_parity_without_cache(self):
        serial = run_scenario("multi-fault", workers=1)
        parallel = run_scenario("multi-fault", workers=3)
        assert serial.to_json() == parallel.to_json()

    def test_results_ordered_by_point_index(self):
        sweep = run_scenario("smoke", workers=2)
        assert [p["index"] for p in sweep.points] == list(range(len(sweep.points)))


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        first = run_scenario("smoke", cache_dir=str(tmp_path))
        assert not first.cache_hit
        assert os.path.exists(first.cache_path)
        second = run_scenario("smoke", cache_dir=str(tmp_path))
        assert second.cache_hit
        assert second.to_json() == first.to_json()

    def test_cache_layout(self, tmp_path):
        sweep = run_scenario("smoke", cache_dir=str(tmp_path))
        spec = get_scenario("smoke")
        assert sweep.cache_path == result_path(str(tmp_path), "smoke", spec.key())
        assert sweep.cache_path.endswith(f"smoke/{spec.key()}.json")

    def test_force_recomputes(self, tmp_path):
        run_scenario("smoke", cache_dir=str(tmp_path))
        forced = run_scenario("smoke", cache_dir=str(tmp_path), force=True)
        assert not forced.cache_hit

    def test_corrupt_cache_treated_as_miss(self, tmp_path):
        first = run_scenario("smoke", cache_dir=str(tmp_path))
        with open(first.cache_path, "w") as fh:
            fh.write("{not json")
        again = run_scenario("smoke", cache_dir=str(tmp_path))
        assert not again.cache_hit
        assert again.to_json() == first.to_json()

    def test_no_cache_dir_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        sweep = run_scenario("smoke")
        assert sweep.cache_path is None
        assert os.listdir(tmp_path) == []

    def test_unwritable_cache_dir_one_line_repro_error(self, tmp_path):
        # a regular file where the cache tree must go (chmod is useless
        # for this under root, a blocking file is not)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="cannot write sweep cache"):
            run_scenario("smoke", cache_dir=str(blocker))

    def test_payload_is_valid_canonical_json(self, tmp_path):
        sweep = run_scenario("smoke", cache_dir=str(tmp_path))
        with open(sweep.cache_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["scenario"] == "smoke"
        assert payload["key"] == get_scenario("smoke").key()
        assert len(payload["points"]) == 4


class TestDeterminism:
    def test_repeated_runs_identical(self):
        assert run_scenario("smoke").to_json() == run_scenario("smoke").to_json()

    def test_point_seeds_recorded_and_stable(self):
        first = run_scenario("smoke")
        second = run_scenario("smoke", workers=2)
        assert [p["seed"] for p in first.points] == [p["seed"] for p in second.points]
        assert len({p["seed"] for p in first.points}) == len(first.points)


class TestSweepResult:
    def test_by_axes_single_and_multi(self):
        sweep = run_scenario("smoke")
        by_policy_frac = sweep.by_axes("policy", "fault_frac")
        assert ("rollback", 0.4) in by_policy_frac
        by_policy = sweep.by_axes("policy")
        assert set(by_policy) == {"rollback", "splice"}

    def test_results_are_json_primitives(self):
        for result in run_scenario("smoke").results():
            json.dumps(result)
            assert result["completed"] is True
            assert result["correct"] is True

    def test_sweep_table_renders_axes_and_columns(self):
        sweep = run_scenario("smoke")
        text = sweep_table(sweep)
        assert "policy" in text and "fault_frac" in text
        assert "slowdown" in text and "rollback" in text


class TestFigureScenarioParity:
    """Acceptance: two paper-figure scenarios, byte-identical across workers
    and served from cache on the second invocation."""

    @pytest.mark.parametrize("name", ["fig1-fragmentation", "overhead-faultfree"])
    def test_parity_and_cache(self, tmp_path, name):
        w1 = run_scenario(name, workers=1, cache_dir=str(tmp_path / "w1"))
        w4 = run_scenario(name, workers=4, cache_dir=str(tmp_path / "w4"))
        with open(w1.cache_path, "rb") as a, open(w4.cache_path, "rb") as b:
            assert a.read() == b.read()
        again = run_scenario(name, workers=4, cache_dir=str(tmp_path / "w1"))
        assert again.cache_hit
