"""Tests for the report aggregation layer."""

from __future__ import annotations

import pytest

from repro.exp import get_scenario, run_scenario, with_replications
from repro.report import aggregate_sweep
from repro.report.aggregate import (
    bootstrap_seed,
    display_metrics,
    flag_fields,
    numeric_fields,
)


@pytest.fixture(scope="module")
def smoke_r3():
    spec = with_replications(get_scenario("smoke"), 3)
    sweep = run_scenario(spec, workers=1)
    return aggregate_sweep(sweep, spec)


class TestFlattening:
    def test_numeric_fields_flatten_one_level(self):
        result = {
            "makespan": 10.0,
            "completed": True,
            "value": "'55'",
            "fault_times": [1.0, 2.0],
            "metrics": {"steps_wasted": 3, "verified": True},
            "fault_free": {"makespan": 8.0},
        }
        nums = numeric_fields(result)
        assert nums == {
            "makespan": 10.0,
            "metrics.steps_wasted": 3.0,
            "fault_free.makespan": 8.0,
        }

    def test_flag_fields_are_top_level_bools(self):
        assert flag_fields({"completed": True, "verified": False, "x": 1}) == {
            "completed": True,
            "verified": False,
        }


class TestAggregateSweep:
    def test_one_cell_per_grid_cell(self, smoke_r3):
        assert len(smoke_r3.cells) == 4
        assert smoke_r3.replications == 3
        for cell in smoke_r3.cells:
            assert cell.n == 3
            assert len(cell.seeds) == 3

    def test_cells_keep_sweep_order_and_axes(self, smoke_r3):
        labels = [dict(cell.axes) for cell in smoke_r3.cells]
        assert labels[0] == {"policy": "rollback", "fault_frac": 0.4}
        assert labels[-1] == {"policy": "splice", "fault_frac": 0.8}

    def test_summaries_cover_the_metrics_namespace(self, smoke_r3):
        cell = smoke_r3.cells[0]
        assert "makespan" in cell.metrics
        assert "metrics.steps_wasted" in cell.metrics
        summary = cell.metrics["makespan"]
        assert summary.n == 3
        assert summary.minimum <= summary.q1 <= summary.median
        assert summary.median <= summary.q3 <= summary.maximum
        assert summary.ci_low <= summary.median <= summary.ci_high

    def test_flags_counted(self, smoke_r3):
        cell = smoke_r3.cells[0]
        assert cell.flags["completed"] == 3
        assert cell.flags["verified"] == 3

    def test_samples_back_the_summaries(self, smoke_r3):
        cell = smoke_r3.cells[0]
        assert len(cell.samples["makespan"]) == 3

    def test_replications_read_from_the_sweep_when_spec_omitted(self):
        # a replicated sweep aggregated without its derived spec must
        # not report replications=1
        sweep = run_scenario(with_replications(get_scenario("smoke"), 2))
        agg = aggregate_sweep(sweep)
        assert agg.replications == 2
        assert all(cell.n == 2 for cell in agg.cells)

    def test_deterministic_rebuild(self):
        spec = with_replications(get_scenario("smoke"), 3)
        sweep = run_scenario(spec, workers=1)
        a = aggregate_sweep(sweep, spec)
        b = aggregate_sweep(sweep, spec)
        assert a.cells[0].metrics["makespan"] == b.cells[0].metrics["makespan"]

    def test_unreplicated_sweep_degenerates_honestly(self):
        sweep = run_scenario("smoke", workers=1)
        agg = aggregate_sweep(sweep)
        cell = agg.cells[0]
        s = cell.metrics["makespan"]
        assert cell.n == 1
        assert s.ci_low == s.median == s.ci_high == s.q1 == s.q3

    def test_cell_by_axes_lookup(self, smoke_r3):
        cell = smoke_r3.cell_by_axes(policy="splice", fault_frac=0.8)
        assert dict(cell.axes)["policy"] == "splice"
        with pytest.raises(KeyError, match="matches 2 cells"):
            smoke_r3.cell_by_axes(policy="splice")

    def test_figure_scenario_keeps_the_rendered_table(self):
        sweep = run_scenario("fig1-fragmentation", workers=1)
        agg = aggregate_sweep(sweep)
        (cell,) = agg.cells
        assert cell.text and "Fragments after processor B fails" in cell.text
        assert cell.flags["ok"] == 1


class TestDisplayMetrics:
    def test_makespan_first_then_columns(self, smoke_r3):
        cell = smoke_r3.cells[0]
        shown = display_metrics(smoke_r3, cell)
        assert shown[0] == "makespan"
        assert "metrics.steps_wasted" in shown  # column 'steps_wasted' resolved
        assert "slowdown" in shown


class TestBootstrapSeed:
    def test_stable_and_distinct(self):
        axes = (("policy", "rollback"),)
        assert bootstrap_seed("s", axes, "makespan") == bootstrap_seed(
            "s", axes, "makespan"
        )
        assert bootstrap_seed("s", axes, "makespan") != bootstrap_seed(
            "s", axes, "slowdown"
        )
        assert bootstrap_seed("s", axes, "makespan") != bootstrap_seed(
            "t", axes, "makespan"
        )
