"""Tests for the report comparison layer."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.exp import get_scenario, run_scenario, with_replications
from repro.report import aggregate_sweep, compare_aggregates, split_compare


@pytest.fixture(scope="module")
def smoke_agg():
    spec = with_replications(get_scenario("smoke"), 2)
    return aggregate_sweep(run_scenario(spec, workers=1), spec)


class TestSplitCompare:
    def test_policy_split_pairs_on_fault_frac(self, smoke_agg):
        (cmp,) = split_compare(smoke_agg, "policy")
        assert cmp.base_label == "policy=rollback"
        assert cmp.other_label == "policy=splice"
        assert cmp.join_axes == ("fault_frac",)
        assert [dict(c.axes) for c in cmp.cells] == [
            {"fault_frac": 0.4},
            {"fault_frac": 0.8},
        ]
        assert not cmp.unmatched_base and not cmp.unmatched_other

    def test_delta_math(self, smoke_agg):
        (cmp,) = split_compare(smoke_agg, "policy")
        cell = cmp.cells[0]
        d = cell.deltas["makespan"]
        base = smoke_agg.cell_by_axes(policy="rollback", fault_frac=0.4)
        other = smoke_agg.cell_by_axes(policy="splice", fault_frac=0.4)
        assert d.base_median == base.metrics["makespan"].median
        assert d.other_median == other.metrics["makespan"].median
        assert d.delta == pytest.approx(d.other_median - d.base_median)
        assert d.ratio == pytest.approx(d.other_median / d.base_median)
        assert d.ci_low <= d.delta <= d.ci_high

    def test_explicit_baseline(self, smoke_agg):
        (cmp,) = split_compare(smoke_agg, "policy", baseline="splice")
        assert cmp.base_label == "policy=splice"
        assert cmp.other_label == "policy=rollback"

    def test_multi_valued_axis_yields_one_comparison_per_value(self):
        spec = get_scenario("chaos-grayfail")  # nemesis axis: control + 2
        agg = aggregate_sweep(run_scenario(spec, workers=2), spec)
        comparisons = split_compare(agg, "nemesis")
        assert len(comparisons) == 2
        assert all(cmp.base_label == "nemesis=" for cmp in comparisons)

    def test_unknown_axis_and_baseline_diagnosed(self, smoke_agg):
        with pytest.raises(SpecError, match="no axis"):
            split_compare(smoke_agg, "nope")
        with pytest.raises(SpecError, match="not a value"):
            split_compare(smoke_agg, "policy", baseline="tmr")

    def test_deterministic(self, smoke_agg):
        a = split_compare(smoke_agg, "policy")[0].cells[0].deltas["makespan"]
        b = split_compare(smoke_agg, "policy")[0].cells[0].deltas["makespan"]
        assert a == b

    def test_single_observation_sides_never_significant(self):
        # n=1 per side yields an exact zero-width interval, which says
        # nothing about replicate variation — no `*` marker
        spec = get_scenario("smoke")
        agg = aggregate_sweep(run_scenario(spec, workers=1), spec)
        (cmp,) = split_compare(agg, "policy")
        for cell in cmp.cells:
            for delta in cell.deltas.values():
                assert delta.n_base == delta.n_other == 1
                assert not delta.significant


class TestCompareAggregates:
    def test_self_compare_joins_all_axes(self, smoke_agg):
        cmp = compare_aggregates(smoke_agg, smoke_agg)
        assert cmp.join_axes == ("policy", "fault_frac")
        assert len(cmp.cells) == 4
        for cell in cmp.cells:
            d = cell.deltas["makespan"]
            assert d.delta == 0.0
            assert not d.significant  # zero delta is never marked

    def test_cross_scenario_join_on_shared_axes(self):
        base_spec = get_scenario("rollback-vs-splice")
        base = aggregate_sweep(run_scenario(base_spec, workers=2), base_spec)
        other_spec = get_scenario("orphan-regime")
        other = aggregate_sweep(run_scenario(other_spec, workers=2), other_spec)
        cmp = compare_aggregates(base, other)
        assert cmp.join_axes == ("policy", "fault_frac")
        # orphan-regime sweeps a subset of the fault fractions
        assert len(cmp.cells) == 6
        assert len(cmp.unmatched_base) == 4
        assert not cmp.unmatched_other

    def test_ambiguous_join_refused(self, smoke_agg):
        with pytest.raises(SpecError, match="several cells"):
            compare_aggregates(smoke_agg, smoke_agg, join_axes=("policy",))

    def test_unknown_join_axis_refused(self, smoke_agg):
        with pytest.raises(SpecError, match="not shared"):
            compare_aggregates(smoke_agg, smoke_agg, join_axes=("nope",))
