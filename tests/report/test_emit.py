"""Tests for the report emitters and end-to-end drivers."""

from __future__ import annotations

import json
import os

import pytest

from repro.exp import get_scenario, run_scenario, with_replications
from repro.report import (
    REPORT_SCHEMA,
    aggregate_sweep,
    compare_payload,
    markdown_compare,
    markdown_report,
    report_payload,
    run_compare,
    run_report,
    split_compare,
)
from repro.util.jsonio import canonical_dumps


@pytest.fixture(scope="module")
def smoke_agg():
    spec = with_replications(get_scenario("smoke"), 2)
    return aggregate_sweep(run_scenario(spec, workers=1), spec)


class TestReportPayload:
    def test_schema_and_shape(self, smoke_agg):
        payload = report_payload(smoke_agg)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["kind"] == "report"
        assert payload["replications"] == 2
        assert len(payload["cells"]) == 4
        cell = payload["cells"][0]
        assert cell["n"] == 2
        assert "makespan" in cell["metrics"]
        assert len(cell["samples"]["makespan"]) == 2
        json.dumps(payload)  # JSON-safe

    def test_byte_deterministic(self, smoke_agg):
        assert canonical_dumps(report_payload(smoke_agg)) == canonical_dumps(
            report_payload(smoke_agg)
        )


class TestMarkdownReport:
    def test_contains_tables_flags_and_header(self, smoke_agg):
        text = markdown_report(smoke_agg, description="desc here")
        assert text.startswith("# Report: `smoke`")
        assert "desc here" in text
        assert "| metric | n | median | IQR | 95% CI |" in text
        assert "policy=rollback, fault_frac=0.4" in text
        assert "completed 2/2" in text

    def test_figure_report_embeds_the_paper_table(self):
        sweep = run_scenario("fig5-cases", workers=1)
        text = markdown_report(aggregate_sweep(sweep))
        assert "```text" in text
        assert "Figure 5: orderings of C's completion" in text


class TestMarkdownCompare:
    def test_delta_table_and_significance_marker(self, smoke_agg):
        comparisons = split_compare(smoke_agg, "policy")
        text = markdown_compare(comparisons)
        assert text.startswith("# Compare: `smoke`")
        assert "policy=rollback → policy=splice" in text
        assert "Δ 95% CI" in text
        # smoke's splice beats rollback at both fracs with zero variance,
        # so the CI excludes zero and the marker must appear
        assert "\\*" in text

    def test_compare_payload_schema(self, smoke_agg):
        payload = compare_payload(split_compare(smoke_agg, "policy"))
        assert payload["schema"] == REPORT_SCHEMA and payload["kind"] == "compare"
        (cmp,) = payload["comparisons"]
        assert cmp["join_axes"] == ["fault_frac"]
        json.dumps(payload)


class TestDrivers:
    def test_run_report_writes_the_pair(self, tmp_path):
        result = run_report(
            "smoke", replications=2, cache_dir=str(tmp_path / "c"),
            out_dir=str(tmp_path / "r"),
        )
        assert os.path.exists(result.markdown_path)
        assert os.path.exists(result.json_path)
        with open(result.json_path, encoding="utf-8") as fh:
            assert json.load(fh)["schema"] == REPORT_SCHEMA
        with open(result.markdown_path, encoding="utf-8") as fh:
            assert fh.read() == result.markdown

    def test_run_report_reuses_the_sweep_cache(self, tmp_path):
        cache = str(tmp_path / "c")
        first = run_report("smoke", replications=2, cache_dir=cache, out_dir=None)
        assert not first.sweeps[0].cache_hit
        second = run_report("smoke", replications=2, cache_dir=cache, out_dir=None)
        assert second.sweeps[0].cache_hit
        assert second.markdown == first.markdown
        assert canonical_dumps(second.payload) == canonical_dumps(first.payload)

    def test_run_compare_axis_form(self, tmp_path):
        result = run_compare(
            "smoke", axis="policy", replications=2,
            cache_dir=str(tmp_path / "c"), out_dir=str(tmp_path / "r"),
        )
        assert result.name == "smoke-by-policy"
        assert os.path.basename(result.markdown_path) == "smoke-by-policy.md"
        assert result.comparisons and result.comparisons[0].join_axes == ("fault_frac",)

    def test_run_compare_two_scenarios(self, tmp_path):
        result = run_compare(
            "rollback-vs-splice", other="orphan-regime", workers=2,
            cache_dir=str(tmp_path / "c"), out_dir=None,
        )
        assert result.name == "rollback-vs-splice-vs-orphan-regime"
        assert "unmatched base cells" in result.markdown

    def test_run_compare_needs_exactly_one_form(self, tmp_path):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="exactly one"):
            run_compare("smoke", cache_dir=str(tmp_path), out_dir=None)
        with pytest.raises(SpecError, match="exactly one"):
            run_compare(
                "smoke", other="smoke", axis="policy",
                cache_dir=str(tmp_path), out_dir=None,
            )

    def test_unknown_scenario_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_report("nope", cache_dir=str(tmp_path), out_dir=None)

    def test_bad_interval_params_rejected_before_the_sweep(self, tmp_path):
        from repro.errors import SpecError

        cache = str(tmp_path / "c")
        with pytest.raises(SpecError, match="level"):
            run_report("smoke", level=1.5, cache_dir=cache, out_dir=None)
        with pytest.raises(SpecError, match="resamples"):
            run_report("smoke", n_boot=0, cache_dir=cache, out_dir=None)
        with pytest.raises(SpecError, match="level"):
            run_compare(
                "smoke", axis="policy", level=0.0, cache_dir=cache, out_dir=None
            )
        assert not os.path.exists(cache)  # rejected before any sweep ran
