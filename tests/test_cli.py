"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import _parse_fault, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_workloads_and_policies(self):
        code, text = run_cli("list")
        assert code == 0
        assert "fib-10" in text
        assert "splice" in text


class TestRun:
    def test_fault_free_run(self):
        code, text = run_cli("run", "fib-10", "--policy", "none")
        assert code == 0
        assert "completed" in text and "verified" in text

    def test_run_with_fault_recovers(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "splice", "--fault", "600:2", "--seed", "7"
        )
        assert code == 0
        assert "verified" in text

    def test_run_with_fault_no_ft_fails_exit_code(self):
        code, text = run_cli(
            "run", "balanced-d5-f2", "--policy", "none", "--fault", "150:1"
        )
        assert code == 1
        assert "STALLED" in text

    def test_trace_flag(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "rollback", "--fault", "600:2", "--trace"
        )
        assert code == 0
        assert "recovery_reissue" in text

    def test_replicated_policy(self):
        code, text = run_cli(
            "run",
            "balanced-d3-f4",
            "--policy",
            "replicated",
            "--replication",
            "3",
            "--processors",
            "5",
            "--fault",
            "100:1",
        )
        assert code == 0

    def test_unknown_workload(self):
        code, _ = run_cli("run", "no-such-workload")
        assert code == 2

    def test_invalid_config(self):
        code, _ = run_cli("run", "fib-10", "--processors", "6", "--topology", "hypercube")
        assert code == 2

    def test_fault_on_unknown_processor(self):
        code, _ = run_cli("run", "fib-10", "--fault", "100:9")
        assert code == 2

    def test_workload_spec_strings_accepted(self):
        # `repro run` takes the full workload grammar, not just suite names
        code, text = run_cli("run", "balanced:3:2:10", "--policy", "splice")
        assert code == 0
        assert "completed" in text and "verified" in text

    def test_bad_workload_one_line_diagnostic(self, capsys):
        code, _ = run_cli("run", "balanced:3:x:10")
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "'x'" in err
        assert "Traceback" not in err

    def test_nemesis_flag(self):
        code, text = run_cli(
            "run", "balanced:3:2:10", "--policy", "splice",
            "--nemesis", "jitter:max=10", "--seed", "3",
        )
        assert code == 0
        assert "verified" in text

    def test_bad_nemesis_one_line_diagnostic(self, capsys):
        code, _ = run_cli("run", "fib-10", "--nemesis", "nosuch:x=1")
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown fault model" in err and "Traceback" not in err


class TestRunSpecFlags:
    def test_dry_run_prints_canonical_runspec(self):
        import json

        from repro.api import RUNSPEC_SCHEMA, RunSpec

        code, text = run_cli(
            "run", "balanced:3:2:10", "--policy", "splice",
            "--fault", "300:1", "--seed", "9", "--dry-run",
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["schema"] == RUNSPEC_SCHEMA
        spec = RunSpec.from_json(doc)
        assert spec.workload.to_spec_str() == "balanced:3:2:10"
        assert spec.policy.name == "splice" and spec.seed == 9
        assert spec.faults.mode == "time" and spec.faults.entries == ((300.0, 1),)
        # canonical: the emitted text is byte-stable
        from repro.util.jsonio import canonical_dumps

        assert text == canonical_dumps(doc)

    def test_spec_json_replays_a_saved_spec(self, tmp_path):
        code, text = run_cli(
            "run", "balanced:3:2:10", "--policy", "splice", "--seed", "4", "--dry-run"
        )
        assert code == 0
        path = tmp_path / "spec.json"
        path.write_text(text)
        code, text = run_cli("run", "--spec-json", str(path))
        assert code == 0
        assert "completed" in text and "verified" in text

    def test_spec_json_conflicts_with_workload(self, capsys):
        code, _ = run_cli("run", "fib-10", "--spec-json", "x.json")
        assert code == 2
        assert "--spec-json" in capsys.readouterr().err

    def test_spec_json_rejects_flag_overrides(self, tmp_path, capsys):
        # flags alongside --spec-json would silently run a different
        # experiment than the document names — refuse instead
        code, text = run_cli("run", "balanced:3:2:10", "--dry-run")
        assert code == 0
        path = tmp_path / "spec.json"
        path.write_text(text)
        code, _ = run_cli(
            "run", "--spec-json", str(path), "--policy", "splice", "--seed", "9"
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "--policy" in err and "--seed" in err and "Traceback" not in err
        # even a flag given at its default value counts as an explicit
        # override attempt and is refused (the document is authoritative)
        code, _ = run_cli("run", "--spec-json", str(path), "--policy", "rollback")
        assert code == 2
        assert "--policy" in capsys.readouterr().err

    def test_spec_json_missing_file(self, capsys):
        code, _ = run_cli("run", "--spec-json", "/no/such/file.json")
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_run_without_workload(self, capsys):
        code, _ = run_cli("run")
        assert code == 2
        assert "workload" in capsys.readouterr().err


class TestFaultParsing:
    def test_parse(self):
        fault = _parse_fault("600:2")
        assert fault.time == 600.0 and fault.node == 2

    def test_reject_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("nope")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("600")

    def test_reject_fraction_mode_prefix(self):
        # "frac:0.5:1" would otherwise inject at t=0.5 absolute
        import argparse

        with pytest.raises(argparse.ArgumentTypeError, match="absolute"):
            _parse_fault("frac:0.5:1")

    def test_cli_and_api_agree_on_the_diagnostic(self):
        # Satellite guarantee: both entry points delegate to
        # FaultSpec.parse, so malformed input yields the same structured
        # message whether it arrives via --fault or the programmatic API.
        import argparse

        from repro.api import FaultSpec, SpecError

        for bad in ("nope", "600", "x:1", "0.5:n", ":", "600:"):
            with pytest.raises(SpecError) as api_err:
                FaultSpec.parse(bad, mode="time")
            with pytest.raises(argparse.ArgumentTypeError) as cli_err:
                _parse_fault(bad)
            assert str(cli_err.value) == str(api_err.value), bad


class TestFaults:
    def test_faults_list_shows_models_and_composition_hint(self):
        code, text = run_cli("faults", "list")
        assert code == 0
        for name in ("crash", "cascade", "partition", "chaos", "grayfail", "jitter"):
            assert name in text
        assert "compose" in text and "docs/FAULTS.md" in text

    def test_faults_describe_shows_params_and_example(self):
        code, text = run_cli("faults", "describe", "chaos")
        assert code == 0
        assert "drop" in text and "reorder" in text
        assert "example:" in text and "fractions of the baseline makespan" in text

    def test_faults_describe_marks_fraction_params(self):
        code, text = run_cli("faults", "describe", "partition")
        assert code == 0
        assert "×T" in text

    def test_faults_describe_unknown(self):
        code, _ = run_cli("faults", "describe", "no-such-model")
        assert code == 2


class TestReport:
    def test_report_list_shows_scenarios_and_hint(self):
        code, text = run_cli("report", "list")
        assert code == 0
        assert "rollback-vs-splice" in text and "smoke" in text
        assert "results/reports" in text and "docs/REPORTS.md" in text

    def test_report_run_writes_markdown_and_json(self, tmp_path):
        cache = str(tmp_path / "results")
        code, text = run_cli(
            "report", "run", "smoke", "--replications", "2",
            "--cache-dir", cache,
        )
        assert code == 0
        assert "# Report: `smoke`" in text
        assert "bootstrap" in text
        md = tmp_path / "results" / "reports" / "smoke.md"
        js = tmp_path / "results" / "reports" / "smoke.json"
        assert md.exists() and js.exists()
        assert f"wrote {md}" in text

    def test_report_run_no_write_and_json(self, tmp_path):
        import json

        cache = str(tmp_path / "results")
        code, text = run_cli(
            "report", "run", "smoke", "--replications", "2",
            "--cache-dir", cache, "--no-write", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["schema"] == "repro-report/1"
        assert payload["replications"] == 2
        assert not (tmp_path / "results" / "reports").exists()

    def test_report_compare_axis(self, tmp_path):
        cache = str(tmp_path / "results")
        code, text = run_cli(
            "report", "compare", "smoke", "--axis", "policy",
            "--replications", "2", "--cache-dir", cache,
        )
        assert code == 0
        assert "policy=rollback → policy=splice" in text
        assert (tmp_path / "results" / "reports" / "smoke-by-policy.md").exists()

    def test_report_compare_baseline_coerced(self, tmp_path):
        # --baseline is a string on the CLI; axis values may be floats
        cache = str(tmp_path / "results")
        code, text = run_cli(
            "report", "compare", "smoke", "--axis", "fault_frac",
            "--baseline", "0.8", "--cache-dir", cache, "--no-write",
        )
        assert code == 0
        assert "fault_frac=0.8 → fault_frac=0.4" in text

    def test_report_reuses_the_sweep_cache(self, tmp_path):
        cache = str(tmp_path / "results")
        code, _ = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0
        code, text = run_cli(
            "report", "run", "smoke", "--cache-dir", cache, "--no-write"
        )
        assert code == 0
        assert "replicates per point: 1" in text

    def test_report_unknown_scenario(self, capsys):
        code, _ = run_cli("report", "run", "no-such-scenario")
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_report_bad_replications_one_line_diagnostic(self, capsys):
        code, _ = run_cli("report", "run", "smoke", "--replications", "0", "--no-write")
        assert code == 2
        err = capsys.readouterr().err
        assert ">= 1" in err and "Traceback" not in err

    def test_report_compare_requires_one_form(self, capsys):
        code, _ = run_cli("report", "compare", "smoke", "--no-write")
        assert code == 2
        assert "exactly one" in capsys.readouterr().err
        code, _ = run_cli(
            "report", "compare", "smoke", "smoke", "--axis", "policy", "--no-write"
        )
        assert code == 2

    def test_report_bad_axis_one_line_diagnostic(self, capsys):
        code, _ = run_cli("report", "compare", "smoke", "--axis", "nope", "--no-write")
        assert code == 2
        err = capsys.readouterr().err
        assert "no axis" in err and "Traceback" not in err


class TestExp:
    def test_exp_list_shows_scenarios(self):
        code, text = run_cli("exp", "list")
        assert code == 0
        assert "rollback-vs-splice" in text
        assert "overhead-faultfree" in text
        assert "smoke" in text

    def test_exp_show(self):
        code, text = run_cli("exp", "show", "smoke")
        assert code == 0
        assert "axes" in text and "fault_frac" in text
        assert "point seeds" in text

    def test_exp_show_json_expands_runspecs(self):
        import json

        from repro.api import RUNSPEC_SCHEMA, RunSpec
        from repro.exp import get_scenario
        from repro.util.jsonio import canonical_dumps

        code, text = run_cli("exp", "show", "smoke", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["scenario"] == "smoke"
        assert payload["key"] == get_scenario("smoke").key()
        assert payload["n_points"] == len(payload["points"]) == 4
        for point in payload["points"]:
            doc = point["runspec"]
            assert doc["schema"] == RUNSPEC_SCHEMA
            RunSpec.from_json(doc)  # must be a valid, replayable document
        assert text == canonical_dumps(payload)

    def test_exp_show_json_covers_the_competing_policies(self):
        import json

        from repro.api import RunSpec

        code, text = run_cli("exp", "show", "policy-compare-chaos", "--json")
        assert code == 0
        payload = json.loads(text)
        policies = {p["params"]["policy"] for p in payload["points"]}
        assert {"incremental", "incremental:persist=hybrid", "reversible"} <= policies
        for point in payload["points"]:
            doc = point["runspec"]
            spec = RunSpec.from_json(doc)  # valid, replayable document
            assert spec.policy.to_spec_str() == point["params"]["policy"]
            # the persist key is emitted only for the parameterized form
            assert ("persist" in doc["policy"]) == (
                point["params"]["policy"] == "incremental:persist=hybrid"
            )

    def test_exp_show_json_non_machine_runner_has_params_only(self):
        import json

        code, text = run_cli("exp", "show", "fig1-fragmentation", "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["runner"] == "figure"
        assert "runspec" not in payload["points"][0]

    def test_exp_show_unknown(self):
        code, _ = run_cli("exp", "show", "no-such-scenario")
        assert code == 2

    def test_exp_show_malformed_registered_scenario_diagnoses(self, capsys):
        # a user-registered scenario with a typo'd param must get the
        # one-line SpecError treatment, not a traceback (key() parses
        # every machine point into a RunSpec)
        from repro.exp import ScenarioSpec
        from repro.exp.scenario import _REGISTRY

        bad = ScenarioSpec(
            name="bad-typo",
            title="typo'd param",
            description="test",
            runner="machine",
            base={"workload": "balanced:2:2:5", "procesors": 8},
            axes={},
        )
        _REGISTRY[bad.name] = bad
        try:
            code, _ = run_cli("exp", "show", "bad-typo")
            assert code == 2
            err = capsys.readouterr().err
            assert "unknown run parameter" in err and "procesors" in err
            code, _ = run_cli("exp", "show", "bad-typo", "--json")
            assert code == 2
        finally:
            del _REGISTRY[bad.name]

    def test_exp_run_unknown(self):
        code, _ = run_cli("exp", "run", "no-such-scenario")
        assert code == 2

    def test_exp_run_no_cache(self):
        code, text = run_cli("exp", "run", "smoke", "--no-cache")
        assert code == 0
        assert "rollback" in text and "splice" in text
        assert "cache:" not in text

    def test_exp_run_caches_and_hits(self, tmp_path):
        cache = str(tmp_path / "results")
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0 and "cache: miss, computed" in text
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0 and "cache: hit" in text
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache, "--force")
        assert code == 0 and "cache: miss, computed" in text

    def test_exp_run_workers_match_serial(self, tmp_path):
        import json

        code1, text1 = run_cli(
            "exp", "run", "smoke", "--no-cache", "--json", "--workers", "1"
        )
        code2, text2 = run_cli(
            "exp", "run", "smoke", "--no-cache", "--json", "--workers", "2"
        )
        assert code1 == code2 == 0
        assert text1 == text2
        payload = json.loads(text1)
        assert payload["scenario"] == "smoke" and len(payload["points"]) == 4


class TestExpLedger:
    """CLI surface of the durable run ledger (docs/LEDGER.md)."""

    def test_exp_run_ledgers_by_default_with_cache(self, tmp_path):
        import os

        cache = str(tmp_path / "results")
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0
        assert "ledger:" in text
        from repro.exp import get_scenario

        run_id = get_scenario("smoke").run_id()
        assert run_id in text
        assert os.path.exists(
            os.path.join(cache, "ledger", f"{run_id}.jsonl")
        )

    def test_no_ledger_and_no_cache_disable_the_ledger(self, tmp_path):
        cache = str(tmp_path / "results")
        code, text = run_cli(
            "exp", "run", "smoke", "--cache-dir", cache, "--no-ledger"
        )
        assert code == 0 and "ledger:" not in text
        assert not (tmp_path / "results" / "ledger").exists()
        code, text = run_cli("exp", "run", "smoke", "--no-cache")
        assert code == 0 and "ledger:" not in text

    def test_cache_hit_prints_no_ledger_line(self, tmp_path):
        import shutil

        cache = str(tmp_path / "results")
        run_cli("exp", "run", "smoke", "--cache-dir", cache)
        shutil.rmtree(tmp_path / "results" / "ledger")
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0 and "cache: hit" in text
        assert "ledger:" not in text
        assert not (tmp_path / "results" / "ledger").exists()

    def test_exp_runs_empty_dir(self, tmp_path):
        code, text = run_cli(
            "exp", "runs", "--cache-dir", str(tmp_path / "results")
        )
        assert code == 0
        assert "no ledgered runs" in text

    def test_exp_runs_lists_progress_and_json(self, tmp_path):
        import json

        cache = str(tmp_path / "results")
        run_cli("exp", "run", "smoke", "--cache-dir", cache)
        code, text = run_cli("exp", "runs", "--cache-dir", cache)
        assert code == 0
        assert "smoke" in text and "4/4" in text and "100%" in text
        code, text = run_cli("exp", "runs", "--cache-dir", cache, "--json")
        assert code == 0
        payload = json.loads(text)
        assert payload["schema"] == "repro-ledger/1"
        (entry,) = payload["runs"]
        assert entry["scenario"] == "smoke"
        assert entry["progress"] == 1.0 and entry["status"] == "complete"

    def test_exp_resume_unknown_run_exits_2(self, tmp_path, capsys):
        code, _ = run_cli(
            "exp", "resume", "nope-123456789abc",
            "--cache-dir", str(tmp_path / "results"),
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "no ledger for run" in err and "Traceback" not in err

    def test_exp_resume_completes_and_matches_direct_run(self, tmp_path):
        from repro.exp import LedgerWriter, get_scenario, run_scenario

        spec = get_scenario("smoke")
        cache = str(tmp_path / "results")
        full = run_scenario("smoke")
        ledger_dir = tmp_path / "results" / "ledger"
        with LedgerWriter.start(str(ledger_dir), spec) as writer:
            writer.point_started(0)
            writer.point_finished(0, full.points[0]["result"])
        code, text = run_cli("exp", "resume", spec.run_id(), "--cache-dir", cache)
        assert code == 0
        assert "resumed 3 point(s)" in text
        code, direct = run_cli(
            "exp", "run", "smoke", "--cache-dir", str(tmp_path / "ref"), "--json"
        )
        assert code == 0
        code, resumed = run_cli(
            "exp", "run", "smoke", "--cache-dir", cache, "--json"
        )
        assert code == 0 and resumed == direct

    def test_exp_run_unwritable_cache_exits_1_one_line(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache tree must go")
        code, _ = run_cli("exp", "run", "smoke", "--cache-dir", str(blocker))
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err
