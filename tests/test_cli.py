"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import _parse_fault, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_workloads_and_policies(self):
        code, text = run_cli("list")
        assert code == 0
        assert "fib-10" in text
        assert "splice" in text


class TestRun:
    def test_fault_free_run(self):
        code, text = run_cli("run", "fib-10", "--policy", "none")
        assert code == 0
        assert "completed" in text and "verified" in text

    def test_run_with_fault_recovers(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "splice", "--fault", "600:2", "--seed", "7"
        )
        assert code == 0
        assert "verified" in text

    def test_run_with_fault_no_ft_fails_exit_code(self):
        code, text = run_cli(
            "run", "balanced-d5-f2", "--policy", "none", "--fault", "150:1"
        )
        assert code == 1
        assert "STALLED" in text

    def test_trace_flag(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "rollback", "--fault", "600:2", "--trace"
        )
        assert code == 0
        assert "recovery_reissue" in text

    def test_replicated_policy(self):
        code, text = run_cli(
            "run",
            "balanced-d3-f4",
            "--policy",
            "replicated",
            "--replication",
            "3",
            "--processors",
            "5",
            "--fault",
            "100:1",
        )
        assert code == 0

    def test_unknown_workload(self):
        code, _ = run_cli("run", "no-such-workload")
        assert code == 2

    def test_invalid_config(self):
        code, _ = run_cli("run", "fib-10", "--processors", "6", "--topology", "hypercube")
        assert code == 2

    def test_fault_on_unknown_processor(self):
        code, _ = run_cli("run", "fib-10", "--fault", "100:9")
        assert code == 2


class TestFaultParsing:
    def test_parse(self):
        fault = _parse_fault("600:2")
        assert fault.time == 600.0 and fault.node == 2

    def test_reject_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("nope")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("600")


class TestFaults:
    def test_faults_list_shows_models_and_composition_hint(self):
        code, text = run_cli("faults", "list")
        assert code == 0
        for name in ("crash", "cascade", "partition", "chaos", "grayfail", "jitter"):
            assert name in text
        assert "compose" in text and "docs/FAULTS.md" in text

    def test_faults_describe_shows_params_and_example(self):
        code, text = run_cli("faults", "describe", "chaos")
        assert code == 0
        assert "drop" in text and "reorder" in text
        assert "example:" in text and "fractions of the baseline makespan" in text

    def test_faults_describe_marks_fraction_params(self):
        code, text = run_cli("faults", "describe", "partition")
        assert code == 0
        assert "×T" in text

    def test_faults_describe_unknown(self):
        code, _ = run_cli("faults", "describe", "no-such-model")
        assert code == 2


class TestExp:
    def test_exp_list_shows_scenarios(self):
        code, text = run_cli("exp", "list")
        assert code == 0
        assert "rollback-vs-splice" in text
        assert "overhead-faultfree" in text
        assert "smoke" in text

    def test_exp_show(self):
        code, text = run_cli("exp", "show", "smoke")
        assert code == 0
        assert "axes" in text and "fault_frac" in text
        assert "point seeds" in text

    def test_exp_show_unknown(self):
        code, _ = run_cli("exp", "show", "no-such-scenario")
        assert code == 2

    def test_exp_run_unknown(self):
        code, _ = run_cli("exp", "run", "no-such-scenario")
        assert code == 2

    def test_exp_run_no_cache(self):
        code, text = run_cli("exp", "run", "smoke", "--no-cache")
        assert code == 0
        assert "rollback" in text and "splice" in text
        assert "cache:" not in text

    def test_exp_run_caches_and_hits(self, tmp_path):
        cache = str(tmp_path / "results")
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0 and "cache: miss, computed" in text
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache)
        assert code == 0 and "cache: hit" in text
        code, text = run_cli("exp", "run", "smoke", "--cache-dir", cache, "--force")
        assert code == 0 and "cache: miss, computed" in text

    def test_exp_run_workers_match_serial(self, tmp_path):
        import json

        code1, text1 = run_cli(
            "exp", "run", "smoke", "--no-cache", "--json", "--workers", "1"
        )
        code2, text2 = run_cli(
            "exp", "run", "smoke", "--no-cache", "--json", "--workers", "2"
        )
        assert code1 == code2 == 0
        assert text1 == text2
        payload = json.loads(text1)
        assert payload["scenario"] == "smoke" and len(payload["points"]) == 4
