"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import _parse_fault, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_workloads_and_policies(self):
        code, text = run_cli("list")
        assert code == 0
        assert "fib-10" in text
        assert "splice" in text


class TestRun:
    def test_fault_free_run(self):
        code, text = run_cli("run", "fib-10", "--policy", "none")
        assert code == 0
        assert "completed" in text and "verified" in text

    def test_run_with_fault_recovers(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "splice", "--fault", "600:2", "--seed", "7"
        )
        assert code == 0
        assert "verified" in text

    def test_run_with_fault_no_ft_fails_exit_code(self):
        code, text = run_cli(
            "run", "balanced-d5-f2", "--policy", "none", "--fault", "150:1"
        )
        assert code == 1
        assert "STALLED" in text

    def test_trace_flag(self):
        code, text = run_cli(
            "run", "fib-10", "--policy", "rollback", "--fault", "600:2", "--trace"
        )
        assert code == 0
        assert "recovery_reissue" in text

    def test_replicated_policy(self):
        code, text = run_cli(
            "run",
            "balanced-d3-f4",
            "--policy",
            "replicated",
            "--replication",
            "3",
            "--processors",
            "5",
            "--fault",
            "100:1",
        )
        assert code == 0

    def test_unknown_workload(self):
        code, _ = run_cli("run", "no-such-workload")
        assert code == 2

    def test_invalid_config(self):
        code, _ = run_cli("run", "fib-10", "--processors", "6", "--topology", "hypercube")
        assert code == 2

    def test_fault_on_unknown_processor(self):
        code, _ = run_cli("run", "fib-10", "--fault", "100:9")
        assert code == 2


class TestFaultParsing:
    def test_parse(self):
        fault = _parse_fault("600:2")
        assert fault.time == 600.0 and fault.node == 2

    def test_reject_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("nope")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("600")
