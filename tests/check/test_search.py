"""Search-layer tests: seeded determinism and the ledger contract.

The acceptance bar for the searcher is reproducibility: the same
``(base spec, seed)`` must produce the byte-identical ledger — same
attempts, same violation, same minimal reproducer — on every run.  A
chaos-only search must find a violation on the smoke workload (the
notified one-sided drop regime), and a benign-model search must come
back clean with a well-formed ledger.
"""

from __future__ import annotations

import json
import os

from repro.api import Experiment
from repro.check import (
    CHECK_SCHEMA,
    CheckConfig,
    ledger_path,
    search,
)
from repro.util.jsonio import canonical_dumps

BASE = (
    Experiment.workload("balanced:3:2:10").policy("rollback")
    .processors(4).seed(0).build()
)


def test_chaos_search_finds_and_shrinks_a_violation(tmp_path):
    result = search(BASE, seed=1, attempts=6, models=("chaos",), out_dir=str(tmp_path))
    assert result.found
    assert result.violation["violations"]  # at least one oracle named
    # the shrunk reproducer is itself still violating and no bigger
    assert result.minimal is not None
    assert len(result.minimal.clauses) <= 2


def test_same_seed_same_ledger_bytes(tmp_path):
    a = search(BASE, seed=1, attempts=6, models=("chaos",),
               out_dir=str(tmp_path / "a"))
    b = search(BASE, seed=1, attempts=6, models=("chaos",),
               out_dir=str(tmp_path / "b"))
    with open(a.path, encoding="utf-8") as fh:
        bytes_a = fh.read()
    with open(b.path, encoding="utf-8") as fh:
        bytes_b = fh.read()
    assert bytes_a == bytes_b
    assert a.violation["minimal"] == b.violation["minimal"]


def test_different_seeds_draw_different_schedules(tmp_path):
    a = search(BASE, seed=1, attempts=3, models=("chaos",), write=False)
    b = search(BASE, seed=2, attempts=3, models=("chaos",), write=False)
    assert [x["nemesis"] for x in a.attempts] != [x["nemesis"] for x in b.attempts]


def test_benign_models_come_back_clean(tmp_path):
    result = search(
        BASE, seed=3, attempts=3, models=("jitter",), out_dir=str(tmp_path)
    )
    assert not result.found and result.violation is None
    assert len(result.attempts) == 3
    assert all(a["status"] == "pass" for a in result.attempts)
    doc = json.load(open(result.path, encoding="utf-8"))
    assert doc["schema"] == CHECK_SCHEMA and doc["violation"] is None


def test_ledger_is_canonical_json_at_the_deterministic_path(tmp_path):
    result = search(
        BASE, seed=3, attempts=2, models=("jitter",), out_dir=str(tmp_path)
    )
    assert result.path == ledger_path(result.base, 3, str(tmp_path))
    with open(result.path, encoding="utf-8") as fh:
        text = fh.read()
    assert text == canonical_dumps(result.to_doc())
    assert text.endswith("\n")
    doc = json.loads(text)
    assert doc["seed"] == 3 and doc["base"]["schema"].startswith("repro-runspec/")
    assert doc["check"] == CheckConfig().to_json()


def test_no_write_leaves_no_ledger(tmp_path):
    result = search(
        BASE, seed=3, attempts=2, models=("jitter",),
        out_dir=str(tmp_path), write=False,
    )
    assert result.path is None and not os.listdir(tmp_path)


def test_base_nemesis_is_cleared_before_searching():
    spec = (
        Experiment.workload("balanced:3:2:10").processors(4)
        .nemesis("jitter:max=25").build()
    )
    result = search(spec, seed=3, attempts=1, models=("jitter",), write=False)
    assert not result.base.nemesis.clauses
