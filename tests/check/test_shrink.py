"""Shrinking tests: deterministic minimization of violating schedules.

Pins the satellite guarantee: a seeded known-violation schedule shrinks
to the same minimal reproducer every time, the minimal schedule still
violates, and none of its own shrink candidates do (local minimality).
"""

from __future__ import annotations

import pytest

from repro.api import Experiment
from repro.api.specs import NemesisSpec
from repro.check import CheckConfig, shrink
from repro.check.search import _check_nemesis
from repro.faults import shrink_candidates, spec_size

BASE = (
    Experiment.workload("balanced:3:2:10").policy("rollback")
    .processors(4).seed(0).build()
)

#: A hand-written schedule known to violate (the notified one-sided
#: drop regime plus a decoy jitter clause the shrinker should discard).
VIOLATING = "chaos:drop=0.2,dup=0.1,notify=1,start=0.1,dur=0.6+jitter:max=25"


class TestShrinkCandidates:
    def test_enumeration_is_deterministic(self):
        spec = NemesisSpec.parse(VIOLATING)
        first = [c.to_spec_str() for c in shrink_candidates(spec)]
        second = [c.to_spec_str() for c in shrink_candidates(spec)]
        assert first == second and first

    def test_every_candidate_is_strictly_smaller(self):
        spec = NemesisSpec.parse(VIOLATING)
        for candidate in shrink_candidates(spec):
            assert spec_size(candidate) < spec_size(spec)

    def test_candidates_cover_clause_param_and_value_shrinks(self):
        spec = NemesisSpec.parse(VIOLATING)
        rendered = [c.to_spec_str() for c in shrink_candidates(spec)]
        assert "jitter:max=25" in rendered  # dropped the chaos clause
        assert any("+jitter:max=12.5" in r for r in rendered)  # halved a value
        assert any("dup" not in r and "+jitter" in r for r in rendered)  # dropped a param

    def test_minimal_schedules_have_no_candidates(self):
        assert shrink_candidates(NemesisSpec.parse("jitter")) == []

    def test_required_params_are_never_removed(self):
        for candidate in shrink_candidates(NemesisSpec.parse("crash:at=0.4,node=1")):
            text = candidate.to_spec_str()
            assert "at=" in text and "node=" in text


class TestShrink:
    @pytest.fixture(scope="class")
    def shrunk(self):
        nemesis = NemesisSpec.parse(VIOLATING)
        assert _check_nemesis(BASE, nemesis, CheckConfig()).violations
        return shrink(BASE, nemesis)

    def test_known_violation_shrinks_deterministically(self, shrunk):
        minimal, trail = shrunk
        again_minimal, again_trail = shrink(BASE, NemesisSpec.parse(VIOLATING))
        assert minimal == again_minimal
        assert trail == again_trail

    def test_minimal_still_violates(self, shrunk):
        minimal, _ = shrunk
        assert _check_nemesis(BASE, minimal, CheckConfig()).violations

    def test_minimal_is_locally_minimal(self, shrunk):
        minimal, _ = shrunk
        for candidate in shrink_candidates(minimal):
            assert not _check_nemesis(BASE, candidate, CheckConfig()).violations

    def test_shrinking_discards_the_decoy_clause(self, shrunk):
        minimal, trail = shrunk
        assert all(c.model != "jitter" for c in minimal.clauses)
        assert trail  # at least one accepted shrink step
        assert spec_size(minimal) < spec_size(NemesisSpec.parse(VIOLATING))
