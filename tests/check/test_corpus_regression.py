"""The pinned reproducer corpus is a permanent regression gate.

``tests/baselines/corpus/`` holds the minimal reproducers that coverage
searches shrank out of the chaos-prone rollback workloads, each with
its full verdict status map at recording time.  Replaying them must
come back clean: every recorded oracle still violates, every verdict
status still matches.  A recovery-policy change that silently fixes —
or worsens — one of these regimes trips this suite, which is the point.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.check import (
    CORPUS_SCHEMA,
    load_corpus,
    run_corpus,
)
from repro.check.corpus import corpus_files
from repro.errors import SpecError

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "baselines", "corpus"
)


def test_the_checked_in_corpus_still_reproduces():
    report = run_corpus(CORPUS_DIR)
    assert len(report.entries) >= 3
    assert report.ok, report.summary()
    # every entry pinned the one-sided weak-recovery regime end to end
    for entry in report.entries:
        assert "weak-recovery" in entry.expected
        assert not entry.missing and not entry.drifted


def test_corpus_documents_are_schema_checked():
    for path in corpus_files(CORPUS_DIR):
        doc = load_corpus(path)
        assert doc["schema"] == CORPUS_SCHEMA
        assert doc["strategy"] == "coverage"
        assert doc["entries"], path
        for entry in doc["entries"]:
            assert entry["violations"], entry["nemesis"]
            assert set(entry["violations"]) <= set(entry["statuses"])
            assert entry["signature"]["completed"] is False


def test_a_drifted_status_trips_the_gate(tmp_path):
    [first] = corpus_files(CORPUS_DIR)[:1]
    doc = load_corpus(first)
    # tamper one pinned verdict: the replay must flag the drift
    entry = doc["entries"][0]
    oracle = entry["violations"][0]
    entry["statuses"][oracle] = "pass"
    entry["violations"] = [
        o for o in entry["violations"] if o != oracle
    ] or entry["violations"]
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(doc), encoding="utf-8")
    report = run_corpus(str(tampered))
    assert not report.ok
    drifted = dict(report.failed[0].drifted)
    assert oracle in drifted
    assert drifted[oracle] == ("pass", "violation")


def test_a_missing_violation_trips_the_gate(tmp_path):
    [first] = corpus_files(CORPUS_DIR)[:1]
    doc = load_corpus(first)
    # pin a benign schedule as "violating": replay must report it missing
    entry = dict(doc["entries"][0])
    entry["nemesis"] = "jitter:max=10"
    entry["statuses"] = {}
    doc["entries"] = [entry]
    tampered = tmp_path / "benign.json"
    tampered.write_text(json.dumps(doc), encoding="utf-8")
    report = run_corpus(str(tampered))
    assert not report.ok
    assert report.failed[0].missing == tuple(entry["violations"])


def test_unreadable_or_wrong_schema_is_a_spec_error(tmp_path):
    with pytest.raises(SpecError):
        run_corpus(str(tmp_path / "nope.json"))
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro-check/2"}', encoding="utf-8")
    with pytest.raises(SpecError):
        run_corpus(str(bad))
    with pytest.raises(SpecError):
        run_corpus(str(tmp_path))  # empty directory
