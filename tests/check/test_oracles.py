"""Oracle-layer unit tests: synthetic traces and end-to-end regimes.

The oracles are pure functions of a :class:`CheckContext`, so most
cases here build tiny hand-written traces that exhibit exactly one
phenomenon — an acausal delivery, an unmatched checkpoint drop, a
stranded recovery — and assert the verdict and its violating window.
The end-to-end cases then pin the three real regimes: fault-free runs
pass everything, crash recovery passes bounded-recovery, and the
classifier regimes from ``docs/FAULTS.md`` land where documented.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment, Session
from repro.check import (
    ORACLE_NAMES,
    CheckConfig,
    CheckContext,
    CheckReport,
    all_oracles,
    check_spec,
    evaluate_context,
)
from repro.errors import SpecError
from repro.sim.trace import KINDS, TraceRecord


def R(time, node, kind, **detail):
    assert kind in KINDS
    return TraceRecord(time, node, kind, detail)


def ctx(records, completed=True, verified=True, makespan=100.0, horizon=300.0, **kw):
    return CheckContext(
        records=tuple(records),
        completed=completed,
        verified=verified,
        makespan=makespan,
        horizon=horizon,
        **kw,
    )


def verdict(name, context, **config):
    report = evaluate_context(context, CheckConfig(oracles=(name,), **config))
    assert len(report.verdicts) == 1
    return report.verdicts[0]


class TestCatalog:
    def test_catalog_names_and_order(self):
        assert ORACLE_NAMES == (
            "result-agreement",
            "no-orphan-commit",
            "checkpoint-coverage",
            "causal-delivery",
            "bounded-recovery",
            "weak-recovery",
        )
        assert tuple(all_oracles()) == ORACLE_NAMES

    def test_unknown_oracle_is_a_spec_error(self):
        with pytest.raises(SpecError) as err:
            evaluate_context(ctx([]), CheckConfig(oracles=("no-such-oracle",)))
        assert err.value.allowed == ORACLE_NAMES

    def test_subset_selection(self):
        report = evaluate_context(
            ctx([]), CheckConfig(oracles=("weak-recovery", "causal-delivery"))
        )
        assert [v.oracle for v in report.verdicts] == [
            "weak-recovery", "causal-delivery",
        ]


class TestResultAgreement:
    def test_stall_is_a_violation_with_window(self):
        v = verdict(
            "result-agreement",
            ctx([R(50.0, 0, "spawn", stamp="0")], completed=False, verified=None),
        )
        assert v.status == "violation" and v.window == (50.0, 100.0)

    def test_wrong_value_is_a_violation(self):
        v = verdict("result-agreement", ctx([], verified=False))
        assert v.status == "violation" and "sequential oracle" in v.detail

    def test_unverified_completion_passes(self):
        assert verdict("result-agreement", ctx([], verified=None)).status == "pass"

    def test_verified_completion_passes(self):
        assert verdict("result-agreement", ctx([])).status == "pass"


class TestNoOrphanCommit:
    def test_delivery_into_aborted_instance_is_a_violation(self):
        v = verdict(
            "no-orphan-commit",
            ctx([
                R(10.0, 1, "task_aborted", stamp="0.1", uid=7, reason="rollback"),
                R(30.0, 1, "result_received", stamp="0.1.0", uid=7, value="3"),
            ]),
        )
        assert v.status == "violation" and v.window == (10.0, 30.0)

    def test_completion_of_aborted_instance_is_a_violation(self):
        v = verdict(
            "no-orphan-commit",
            ctx([
                R(10.0, 1, "task_aborted", stamp="0.1", uid=7, reason="rollback"),
                R(20.0, 1, "task_completed", stamp="0.1", uid=7, value="3"),
            ]),
        )
        assert v.status == "violation"

    def test_abort_then_silence_passes(self):
        v = verdict(
            "no-orphan-commit",
            ctx([
                R(10.0, 1, "task_aborted", stamp="0.1", uid=7, reason="rollback"),
                R(30.0, 1, "result_received", stamp="0.1.0", uid=9, value="3"),
            ]),
        )
        assert v.status == "pass"


class TestCheckpointCoverage:
    def test_unmatched_drop_is_a_violation(self):
        v = verdict(
            "checkpoint-coverage",
            ctx([R(5.0, 0, "checkpoint_dropped", stamp="0.1")]),
        )
        assert v.status == "violation" and "negative" in v.detail

    def test_drop_of_other_stamp_is_still_unmatched(self):
        v = verdict(
            "checkpoint-coverage",
            ctx([
                R(1.0, 0, "checkpoint_recorded", stamp="0.1", dest=1),
                R(5.0, 0, "checkpoint_dropped", stamp="0.2"),
            ]),
        )
        assert v.status == "violation"

    def test_balanced_coverage_passes(self):
        v = verdict(
            "checkpoint-coverage",
            ctx([
                R(1.0, 0, "checkpoint_recorded", stamp="0.1", dest=1),
                R(2.0, 0, "checkpoint_recorded", stamp="0.1", dest=2),
                R(5.0, 0, "checkpoint_dropped", stamp="0.1"),
                R(6.0, 0, "checkpoint_dropped", stamp="0.1"),
            ]),
        )
        assert v.status == "pass" and "2 recorded / 2 dropped" in v.detail


class TestCausalDelivery:
    def test_receive_without_origin_is_a_violation(self):
        v = verdict(
            "causal-delivery",
            ctx([R(10.0, 0, "result_received", stamp="0.1", uid=1, value="2")]),
        )
        assert v.status == "violation" and v.window == (10.0, 10.0)

    @pytest.mark.parametrize(
        "origin", ("result_sent", "result_relayed", "result_orphan_rerouted")
    )
    def test_each_origin_kind_legitimizes(self, origin):
        v = verdict(
            "causal-delivery",
            ctx([
                R(5.0, 2, origin, stamp="0.1", to="0"),
                R(10.0, 0, "result_received", stamp="0.1", uid=1, value="2"),
            ]),
        )
        assert v.status == "pass"

    def test_origin_after_receive_is_still_acausal(self):
        v = verdict(
            "causal-delivery",
            ctx([
                R(10.0, 0, "result_received", stamp="0.1", uid=1, value="2"),
                R(15.0, 2, "result_sent", stamp="0.1", to="0"),
            ]),
        )
        assert v.status == "violation"


class TestBoundedRecovery:
    def test_closed_within_horizon_passes(self):
        v = verdict(
            "bounded-recovery",
            ctx([
                R(10.0, 1, "recovery_reissue", stamp="0.1", reason="rollback", uid=3),
                R(40.0, 1, "recovery_complete", stamp="0.1", uid=3),
            ]),
        )
        assert v.status == "pass"

    def test_closed_late_is_a_violation(self):
        v = verdict(
            "bounded-recovery",
            ctx(
                [
                    R(10.0, 1, "recovery_reissue", stamp="0.1", reason="r", uid=3),
                    R(90.0, 1, "result_received", stamp="0.1", uid=3, value="2"),
                ],
                horizon=50.0,
            ),
        )
        assert v.status == "violation" and v.window == (10.0, 90.0)

    def test_open_obligation_on_a_stalled_run_is_a_violation(self):
        v = verdict(
            "bounded-recovery",
            ctx(
                [R(10.0, 1, "recovery_reissue", stamp="0.1", reason="r", uid=3)],
                completed=False, verified=None,
            ),
        )
        assert v.status == "violation" and "stalled" in v.detail

    def test_holder_abort_moots_the_obligation(self):
        v = verdict(
            "bounded-recovery",
            ctx([
                R(10.0, 1, "recovery_reissue", stamp="0.1", reason="r", uid=3),
                R(20.0, 1, "task_aborted", stamp="0", uid=3, reason="rollback"),
            ]),
        )
        assert v.status == "pass"

    def test_later_reissue_supersedes_the_window(self):
        v = verdict(
            "bounded-recovery",
            CheckContext(
                records=(
                    R(10.0, 1, "recovery_reissue", stamp="0.1", reason="r", uid=3),
                    R(80.0, 1, "recovery_reissue", stamp="0.1", reason="r", uid=3),
                    R(95.0, 1, "recovery_complete", stamp="0.1", uid=3),
                ),
                completed=True, verified=True, makespan=100.0, horizon=30.0,
            ),
        )
        assert v.status == "pass"


class TestWeakRecoveryClassifier:
    def test_no_detections_passes(self):
        assert verdict("weak-recovery", ctx([])).status == "pass"

    def test_true_positive_passes(self):
        v = verdict(
            "weak-recovery",
            ctx([
                R(5.0, 2, "node_failed"),
                R(10.0, 0, "failure_detected", dead=2),
            ]),
        )
        assert v.status == "pass" and "real crash" in v.detail

    def test_symmetric_false_positive_is_weak(self):
        v = verdict(
            "weak-recovery",
            ctx([
                R(10.0, 0, "failure_detected", dead=1),
                R(10.0, 1, "failure_detected", dead=0),
            ]),
        )
        assert v.status == "weak" and "symmetric" in v.detail

    def test_one_sided_survived_is_weak(self):
        v = verdict(
            "weak-recovery",
            ctx([R(10.0, 0, "failure_detected", dead=1)]),
        )
        assert v.status == "weak" and "one-sided" in v.detail

    def test_one_sided_stranding_the_run_is_a_violation(self):
        v = verdict(
            "weak-recovery",
            ctx(
                [R(10.0, 0, "failure_detected", dead=1)],
                completed=False, verified=None,
            ),
        )
        assert v.status == "violation" and "0->1" in v.detail
        assert v.window == (10.0, 100.0)

    def test_dead_nodes_derive_from_trace_or_metrics(self):
        records = (R(5.0, 2, "node_failed"),)
        assert ctx(records).dead_nodes() == frozenset({2})
        assert ctx(records, failed_nodes=(3,)).dead_nodes() == frozenset({3})


class TestReport:
    def test_status_is_the_worst_verdict(self):
        report = evaluate_context(
            ctx([R(10.0, 0, "failure_detected", dead=1)])
        )
        assert report.status == "weak" and report.ok
        report = evaluate_context(ctx([], verified=False))
        assert report.status == "violation" and not report.ok
        assert [v.oracle for v in report.violations] == ["result-agreement"]

    def test_verdict_lookup(self):
        report = evaluate_context(ctx([]))
        assert report.verdict("causal-delivery").status == "pass"
        with pytest.raises(KeyError):
            report.verdict("nope")

    def test_to_json_shape(self):
        doc = evaluate_context(ctx([])).to_json()
        assert doc["status"] == "pass" and len(doc["verdicts"]) == len(ORACLE_NAMES)
        assert {"oracle", "status", "detail", "window"} == set(doc["verdicts"][0])

    def test_table_renders_every_oracle(self):
        text = evaluate_context(ctx([])).table()
        for name in ORACLE_NAMES:
            assert name in text


class TestEndToEnd:
    def test_fault_free_run_passes_every_oracle(self):
        _, report = check_spec(
            Experiment.workload("balanced:4:2:30").policy("rollback")
            .processors(4).seed(0).build()
        )
        assert report.status == "pass"

    def test_crash_recovery_passes_every_oracle(self):
        _, report = check_spec(
            Experiment.workload("balanced:4:2:30").policy("rollback")
            .processors(4).seed(0).fault(0.4, 1).build()
        )
        assert report.status == "pass"
        assert "reissue" in report.verdict("bounded-recovery").detail

    def test_session_oracles_option_attaches_a_report(self):
        session = Session(oracles=True)
        handle = session.run(
            Experiment.workload("balanced:3:2:10").processors(4).build()
        )
        assert isinstance(handle.check, CheckReport)
        assert handle.check.status == "pass"
        # oracle evaluation forces the trace on
        assert session.collect_trace and len(handle.result.trace) > 0

    def test_session_with_custom_config(self):
        session = Session(oracles=CheckConfig(oracles=("result-agreement",)))
        handle = session.run(
            Experiment.workload("balanced:3:2:10").processors(4).build()
        )
        assert [v.oracle for v in handle.check.verdicts] == ["result-agreement"]
