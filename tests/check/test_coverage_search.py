"""Acceptance pins for the coverage-guided searcher.

One pinned configuration — ``balanced:3:2:10`` under rollback, the
``chaos``/``grayfail`` model pool, seed 1, a 12-round budget — where
coverage guidance demonstrably pays for itself against a full-budget
random baseline drawn from the *same* seeded generator:

* strictly more distinct :class:`CoverageSignature`s reached;
* a minimal violating reproducer the random baseline never finds;
* in maximize mode, a worse bounded-recovery margin than any random
  draw surfaces.

All of it byte-deterministic, so these are regressions, not luck.
"""

from __future__ import annotations

import json
import random

from repro.api import Experiment
from repro.check import (
    CHECK_SCHEMA,
    CheckConfig,
    Evaluator,
    ledger_path,
    search,
    shrink,
)
from repro.errors import SpecError
from repro.faults.generate import random_nemesis

BASE = (
    Experiment.workload("balanced:3:2:10").policy("rollback")
    .processors(4).seed(0).build()
)
MODELS = ("chaos", "grayfail")
SEED = 1
BUDGET = 12


def _random_baseline():
    """Full-budget random draws: signature keys, margins, minimals.

    The plain ``strategy="random"`` searcher stops at the first
    violation (its historical contract), so the fair baseline draws the
    *entire* budget from the same seeded generator and shrinks every
    violation it hits.
    """
    rng = random.Random(SEED)
    evaluator = Evaluator(BASE, CheckConfig())
    keys, margins, minimals = set(), [0.0], set()
    for _ in range(BUDGET):
        nemesis = random_nemesis(rng, 4, models=MODELS, max_clauses=2)
        ev = evaluator.evaluate(nemesis)
        keys.add(ev.signature.key())
        margins.append(ev.margin)
        if ev.report.violations:
            minimal, _ = shrink(BASE, nemesis, evaluator=evaluator)
            minimals.add(minimal.to_spec_str())
    return keys, max(margins), minimals


def _coverage(mode="violation", **kw):
    return search(
        BASE, seed=SEED, rounds=BUDGET, strategy="coverage",
        models=MODELS, mode=mode, write=False, **kw,
    )


class TestCoverageBeatsRandomOnThePinnedBudget:
    def test_strictly_more_distinct_signatures(self):
        rand_keys, _, _ = _random_baseline()
        cov = _coverage()
        assert len(cov.signature_keys()) > len(rand_keys)
        # the corpus is exactly the novel-signature schedules
        assert len(set(cov.signature_keys())) == len(cov.corpus)

    def test_finds_a_violating_reproducer_random_misses(self):
        _, _, rand_minimals = _random_baseline()
        cov = _coverage()
        cov_minimals = {v["minimal"] for v in cov.violations}
        assert cov_minimals - rand_minimals
        # and every one of them still names its violated oracles
        assert all(v["minimal_violations"] for v in cov.violations)

    def test_maximize_surfaces_worse_margin_than_any_random_draw(self):
        _, rand_worst, _ = _random_baseline()
        mx = _coverage(mode="maximize")
        assert mx.worst is not None
        assert mx.worst["margin"] > rand_worst

    def test_mutation_rounds_actually_fire(self):
        cov = _coverage()
        origins = {a["origin"] for a in cov.attempts}
        assert origins == {"random", "mutate"}
        # every mutate attempt names its corpus parent
        for a in cov.attempts:
            if a["origin"] == "mutate":
                assert a["parent"] is not None
                assert 0 <= a["parent"] < len(cov.corpus)


class TestCoverageLedger:
    def test_same_seed_same_ledger_bytes(self, tmp_path):
        a = search(BASE, seed=SEED, rounds=BUDGET, strategy="coverage",
                   models=MODELS, out_dir=str(tmp_path / "a"))
        b = search(BASE, seed=SEED, rounds=BUDGET, strategy="coverage",
                   models=MODELS, out_dir=str(tmp_path / "b"))
        bytes_a = open(a.path, encoding="utf-8").read()
        bytes_b = open(b.path, encoding="utf-8").read()
        assert bytes_a == bytes_b

    def test_schema_2_document_shape(self, tmp_path):
        result = search(BASE, seed=SEED, rounds=BUDGET, strategy="coverage",
                        models=MODELS, out_dir=str(tmp_path))
        doc = json.load(open(result.path, encoding="utf-8"))
        assert doc["schema"] == CHECK_SCHEMA == "repro-check/2"
        assert doc["strategy"] == "coverage"
        assert doc["mode"] == "violation"
        assert doc["rounds"] == BUDGET
        assert doc["simulations"] == result.simulations > 0
        assert len(doc["corpus"]) == len(result.corpus)
        assert len(doc["violations"]) == len(result.violations)
        # lineage: every attempt records origin/parent/signature/novel
        for a in doc["attempts"]:
            assert {"origin", "parent", "signature", "novel", "cached"} <= set(a)
        # the compat field: first shrunk violation, as in repro-check/1
        assert doc["violation"] == doc["violations"][0]

    def test_ledger_path_folds_config_strategy_and_mode(self, tmp_path):
        plain = ledger_path(BASE, SEED, str(tmp_path))
        tight = ledger_path(
            BASE, SEED, str(tmp_path),
            config=CheckConfig(horizon_frac=0.5),
        )
        coverage = ledger_path(BASE, SEED, str(tmp_path), strategy="coverage")
        maximize = ledger_path(
            BASE, SEED, str(tmp_path), strategy="coverage", mode="maximize"
        )
        assert len({plain, tight, coverage, maximize}) == 4
        assert f"search-seed{SEED}-coverage-" in coverage
        # default config hashes like an explicit default config
        assert plain == ledger_path(
            BASE, SEED, str(tmp_path), config=CheckConfig()
        )


class TestMemoizedEvaluation:
    def test_evaluator_never_resimulates_a_schedule(self):
        evaluator = Evaluator(BASE, CheckConfig())
        nemesis = random_nemesis(random.Random(0), 4, models=("jitter",))
        first = evaluator.evaluate(nemesis)
        second = evaluator.evaluate(nemesis)
        assert not first.cached and second.cached
        assert evaluator.simulations == 1 and evaluator.hits == 1
        assert first.report is second.report

    def test_shrink_shares_the_evaluator_memo(self):
        cov = _coverage()
        violating = cov.violations[0]["nemesis"]
        evaluator = Evaluator(BASE, CheckConfig())
        from repro.api.specs import NemesisSpec

        nemesis = NemesisSpec.parse(violating)
        minimal_a, _ = shrink(BASE, nemesis, evaluator=evaluator)
        after_first = evaluator.simulations
        minimal_b, _ = shrink(BASE, nemesis, evaluator=evaluator)
        # the re-shrink walks the identical candidate chain: all memo hits
        assert evaluator.simulations == after_first
        assert minimal_a.to_spec_str() == minimal_b.to_spec_str()
        assert minimal_a.to_spec_str() == cov.violations[0]["minimal"]


class TestStrategyValidation:
    def test_unknown_strategy_is_a_spec_error(self):
        try:
            search(BASE, seed=1, attempts=1, strategy="anneal", write=False)
        except SpecError as exc:
            assert "anneal" in str(exc)
        else:
            raise AssertionError("expected SpecError")

    def test_unknown_mode_is_a_spec_error(self):
        try:
            search(BASE, seed=1, attempts=1, mode="minimize", write=False)
        except SpecError as exc:
            assert "minimize" in str(exc)
        else:
            raise AssertionError("expected SpecError")
