"""Coverage-signature tests: the determinism contract and regime pins.

The signature is the feedback signal of the coverage-guided searcher,
so its whole value is stability: the same run must fingerprint
identically no matter how the trace was collected, which process
computed it, or what order dictionaries happened to iterate in — and
genuinely different recovery regimes must fingerprint differently.
Both halves are pinned here against the documented weak-recovery
boundary regimes (``tests/faults/test_weak_recovery_regression.py``).
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.api import Experiment
from repro.api.session import execute
from repro.check import (
    ORACLE_NAMES,
    CheckConfig,
    build_context,
    check_spec,
    evaluate_context,
    recovery_stats,
    signature_from_context,
)
from repro.check.coverage import bucket_count, bucket_margin

BASE = Experiment.workload("balanced:4:2:30").processors(4).seed(0)

#: The two pinned boundary regimes: a symmetric false positive that
#: classifies weak, and the one-sided notified-drop regime that strands
#: rollback outright.
WEAK = BASE.policy("rollback").nemesis(
    "partition:start=0.3,dur=0.25,group=0-1"
).build()
VIOLATION = BASE.policy("rollback").nemesis(
    "chaos:drop=0.15,notify=1,start=0.1,dur=0.6"
).build()


def _signature(spec, config=None):
    config = config or CheckConfig()
    handle = execute(spec, collect_trace=True, verify=True)
    ctx = build_context(handle, config)
    return signature_from_context(ctx, evaluate_context(ctx, config))


class TestSignatureStability:
    def test_identical_across_repeated_executions(self):
        a = _signature(WEAK)
        b = _signature(WEAK)
        assert a == b
        assert a.key() == b.key()
        assert a.to_json() == b.to_json()

    def test_identical_trace_on_vs_trace_forced(self):
        # explicit collect_trace=True vs check_spec's forced tracing
        direct = _signature(VIOLATION)
        handle, report = check_spec(VIOLATION)
        forced = signature_from_context(
            build_context(handle, CheckConfig()), report
        )
        assert direct == forced and direct.key() == forced.key()

    def test_stable_across_process_restarts(self):
        # no hash()/dict-order leaks: a fresh interpreter with a
        # different PYTHONHASHSEED must compute the byte-identical key
        local = _signature(WEAK).key()
        script = (
            "from tests.check.test_coverage import WEAK, _signature;"
            "print(_signature(WEAK).key())"
        )
        for hashseed in ("0", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            )
            assert out.stdout.strip() == local, hashseed

    def test_set_valued_fields_are_canonically_ordered(self):
        sig = _signature(VIOLATION)
        assert sig.reasons == tuple(sorted(sig.reasons))
        assert tuple(o for o, _ in sig.statuses) == ORACLE_NAMES


class TestSignatureDistinguishesRegimes:
    def test_weak_and_violation_regimes_fingerprint_differently(self):
        weak = _signature(WEAK)
        violation = _signature(VIOLATION)
        assert weak != violation
        assert weak.key() != violation.key()
        # and for the documented reasons: the weak run completes with a
        # weak verdict, the one-sided regime strands the run
        assert weak.completed and not violation.completed
        assert ("weak-recovery", "weak") in weak.statuses
        assert ("weak-recovery", "violation") in violation.statuses

    def test_key_is_a_pure_function_of_the_fields(self):
        sig = _signature(WEAK)
        assert sig.key() == sig.key()
        assert f"m{sig.margin}" in sig.key()
        assert f"c{int(sig.completed)}" in sig.key()


class TestRecoveryStats:
    def test_weak_regime_opens_and_closes_windows(self):
        handle = execute(WEAK, collect_trace=True, verify=True)
        stats = recovery_stats(build_context(handle, CheckConfig()))
        assert stats.windows > 0
        assert stats.left_open == 0  # the run recovered and completed
        assert 0.0 < stats.worst_ratio

    def test_stranded_regime_leaves_windows_open(self):
        handle = execute(VIOLATION, collect_trace=True, verify=True)
        stats = recovery_stats(build_context(handle, CheckConfig()))
        assert stats.left_open > 0
        # open windows are still measured — to the end of the run
        assert stats.worst_ratio > 0.0
        assert stats.max_overlap > 1


class TestBucketGrids:
    def test_count_buckets_are_exact_then_log(self):
        assert [bucket_count(n) for n in (0, 1, 2, 3)] == [0, 1, 2, 3]
        assert bucket_count(4) == bucket_count(7) == 4
        assert bucket_count(8) == bucket_count(15) == 5
        assert bucket_count(128) == bucket_count(10**6) == 9

    def test_margin_buckets_on_quarter_grid(self):
        assert bucket_margin(0.0) == 0
        assert bucket_margin(0.1) == 0
        assert bucket_margin(0.25) == 1
        assert bucket_margin(1.0) == 4
        assert bucket_margin(1.12) == 4
        assert bucket_margin(10**9) == 40  # capped
