"""Tests for summary statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Summary,
    bootstrap_delta_ci,
    bootstrap_median_ci,
    confidence_interval,
    geometric_mean,
    quartiles,
    ratio_of_means,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_single_value(self):
        s = summarize([3.0])
        assert s.n == 1
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == s.median == 3.0

    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds_property(self, values):
        s = summarize(values)
        # float summation can place the mean a few ulp outside [min, max]
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.n == len(values)

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean" in text and "n=2" in text


class TestConfidenceInterval:
    def test_single_point_degenerate(self):
        lo, hi = confidence_interval([5.0])
        assert lo == hi == 5.0

    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = confidence_interval(values)
        assert lo <= np.mean(values) <= hi

    def test_wider_at_higher_level(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo95, hi95 = confidence_interval(values, 0.95)
        lo99, hi99 = confidence_interval(values, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    @given(st.lists(finite_floats, min_size=2, max_size=30))
    def test_symmetric_around_mean(self, values):
        lo, hi = confidence_interval(values)
        mean = float(np.mean(values))
        assert (mean - lo) == pytest.approx(hi - mean, abs=1e-9 + abs(mean) * 1e-9)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) <= g * (1 + 1e-9)
        assert g <= max(values) * (1 + 1e-9)


class TestRatioOfMeans:
    def test_known(self):
        assert ratio_of_means([2.0, 4.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            ratio_of_means([1.0], [0.0])


class TestQuartiles:
    def test_known(self):
        q1, med, q3 = quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
        assert (q1, med, q3) == (2.0, 3.0, 4.0)

    def test_singleton_degenerates(self):
        assert quartiles([7.0]) == (7.0, 7.0, 7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quartiles([])

    @given(st.lists(finite_floats, min_size=1, max_size=30))
    def test_ordered_and_bounded(self, values):
        q1, med, q3 = quartiles(values)
        assert min(values) <= q1 <= med <= q3 <= max(values)


class TestBootstrapMedianCI:
    def test_deterministic_for_fixed_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 10.0]
        assert bootstrap_median_ci(values, seed=7) == bootstrap_median_ci(
            values, seed=7
        )

    def test_contains_median_and_is_bounded(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        lo, hi = bootstrap_median_ci(values, seed=0)
        assert min(values) <= lo <= hi <= max(values)
        assert lo <= float(np.median(values)) <= hi

    def test_singleton_degenerates(self):
        assert bootstrap_median_ci([5.0]) == (5.0, 5.0)

    def test_constant_sample_zero_width(self):
        assert bootstrap_median_ci([2.0, 2.0, 2.0], seed=1) == (2.0, 2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([])
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0], level=1.5)

    def test_wider_level_nests(self):
        values = [1.0, 2.0, 3.0, 4.0, 10.0, 0.5, 6.0]
        lo99, hi99 = bootstrap_median_ci(values, level=0.99, seed=3)
        lo80, hi80 = bootstrap_median_ci(values, level=0.80, seed=3)
        assert lo99 <= lo80 and hi80 <= hi99


class TestBootstrapDeltaCI:
    def test_both_singletons_exact(self):
        assert bootstrap_delta_ci([2.0], [5.0]) == (3.0, 3.0)

    def test_deterministic_and_sign_sensible(self):
        base = [10.0, 11.0, 12.0]
        other = [20.0, 21.0, 22.0]
        lo, hi = bootstrap_delta_ci(base, other, seed=4)
        assert (lo, hi) == bootstrap_delta_ci(base, other, seed=4)
        assert lo > 0  # clearly separated samples: CI excludes zero

    def test_identical_samples_cover_zero(self):
        lo, hi = bootstrap_delta_ci([1.0, 2.0, 3.0], [1.0, 2.0, 3.0], seed=0)
        assert lo <= 0.0 <= hi

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_delta_ci([], [1.0])
