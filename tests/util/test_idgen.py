"""Tests for namespaced ID generation."""

from repro.util.idgen import IdGenerator


class TestIdGenerator:
    def test_monotonic_from_zero(self):
        gen = IdGenerator()
        assert [gen.next(), gen.next(), gen.next()] == [0, 1, 2]

    def test_namespaces_independent(self):
        gen = IdGenerator()
        assert gen.next("a") == 0
        assert gen.next("b") == 0
        assert gen.next("a") == 1

    def test_peek_does_not_advance(self):
        gen = IdGenerator()
        assert gen.peek("x") == 0
        assert gen.peek("x") == 0
        assert gen.next("x") == 0
        assert gen.peek("x") == 1

    def test_reset(self):
        gen = IdGenerator()
        gen.next("a")
        gen.reset()
        assert gen.next("a") == 0
