"""Tests for the canonical JSON writer and the shared emit helper."""

from __future__ import annotations

import io
import json
import os

from repro.util.jsonio import (
    canonical_dumps,
    emit_json,
    write_atomic,
    write_canonical_json,
)


class TestCanonicalDumps:
    def test_sorted_indented_trailing_newline(self):
        text = canonical_dumps({"b": 1, "a": [1.5, "x"]})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"b": 1, "a": [1.5, "x"]}

    def test_idempotent(self):
        payload = {"z": [3, 2, 1], "a": {"nested": True}}
        assert canonical_dumps(json.loads(canonical_dumps(payload))) == (
            canonical_dumps(payload)
        )


class TestEmitJson:
    def test_stream_and_file_bytes_identical(self, tmp_path):
        payload = {"scenario": "smoke", "points": [1, 2]}
        out = io.StringIO()
        path = str(tmp_path / "x.json")
        returned = emit_json(payload, out=out, path=path)
        with open(path, encoding="utf-8") as fh:
            on_disk = fh.read()
        assert returned == out.getvalue() == on_disk == canonical_dumps(payload)

    def test_destinations_optional(self, tmp_path):
        assert emit_json({"a": 1}) == canonical_dumps({"a": 1})
        assert os.listdir(tmp_path) == []

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "x.json")
        emit_json({"a": 1}, path=path)
        assert os.path.exists(path)


class TestAtomicWrites:
    def test_write_atomic_replaces(self, tmp_path):
        path = str(tmp_path / "f.txt")
        write_atomic(path, "one")
        write_atomic(path, "two")
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == "two"
        assert os.listdir(tmp_path) == ["f.txt"]  # no temp litter

    def test_write_canonical_json_round_trips(self, tmp_path):
        path = str(tmp_path / "c.json")
        text = write_canonical_json(path, {"k": [1, 2]})
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == text
