"""Tests for ASCII table rendering."""

from __future__ import annotations

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4.5]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        # all lines same width
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789]])
        assert "1.235" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "| a " in out

    def test_wide_cells_expand_columns(self):
        out = format_table(["a"], [["wide-cell-content"]])
        assert "wide-cell-content" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series("n", [1, 2], {"time": [0.5, 1.5]})
        assert "| n " in out
        assert "| time" in out
        assert "1.5" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("n", [1, 2], {"time": [0.5]})

    def test_multiple_series(self):
        out = format_series("n", [1], {"a": [1], "b": [2]})
        header_line = out.splitlines()[1]
        assert "a" in header_line and "b" in header_line
