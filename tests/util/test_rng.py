"""Tests for named, seeded RNG streams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngHub, _derive_seed


class TestDeriveSeed:
    def test_stable(self):
        assert _derive_seed(1, "a") == _derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert _derive_seed(1, "a") != _derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert _derive_seed(1, "a") != _derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_range(self, seed, name):
        value = _derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestRngHub:
    def test_same_seed_same_streams(self):
        a = RngHub(7).stream("x").integers(0, 1000, size=10)
        b = RngHub(7).stream("x").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_stream_identity_cached(self):
        hub = RngHub(7)
        assert hub.stream("x") is hub.stream("x")

    def test_streams_independent_of_creation_order(self):
        hub1 = RngHub(3)
        hub2 = RngHub(3)
        _ = hub1.stream("first")  # consume nothing, just create
        x1 = hub1.stream("second").integers(0, 10**9)
        x2 = hub2.stream("second").integers(0, 10**9)
        assert x1 == x2

    def test_draws_do_not_cross_streams(self):
        hub1 = RngHub(3)
        hub2 = RngHub(3)
        hub1.stream("noise").integers(0, 10, size=100)  # burn one stream
        a = hub1.stream("signal").integers(0, 10**9)
        b = hub2.stream("signal").integers(0, 10**9)
        assert a == b

    def test_spawn_differs_from_parent(self):
        hub = RngHub(3)
        child = hub.spawn("rep0")
        assert child.seed != hub.seed
        assert child.stream("x").integers(0, 10**9) != hub.stream("x").integers(
            0, 10**9
        )

    def test_spawn_reproducible(self):
        assert RngHub(3).spawn("r").seed == RngHub(3).spawn("r").seed

    def test_choice(self):
        hub = RngHub(0)
        options = ["a", "b", "c"]
        assert hub.choice("c", options) in options

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RngHub(0).choice("c", [])

    def test_uniform_bounds(self):
        hub = RngHub(5)
        for _ in range(100):
            v = hub.uniform("u", 2.0, 3.0)
            assert 2.0 <= v < 3.0

    def test_integers_bounds(self):
        hub = RngHub(5)
        for _ in range(100):
            v = hub.integers("i", -3, 4)
            assert -3 <= v < 4
            assert isinstance(v, int)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngHub("seed")  # type: ignore[arg-type]
