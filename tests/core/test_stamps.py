"""Tests for level stamps (paper §3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stamps import LevelStamp, topmost

# Stamps with int digits and tuple digits (the generic-digit licence).
int_digits = st.integers(min_value=0, max_value=5)
tuple_digits = st.tuples(int_digits, int_digits)
digits = st.one_of(int_digits, tuple_digits)
stamps = st.lists(digits, max_size=6).map(lambda ds: LevelStamp(tuple(ds)))


class TestConstruction:
    def test_root_is_empty(self):
        root = LevelStamp.root()
        assert root.is_root
        assert root.depth == 0
        assert str(root) == "ε"

    def test_of(self):
        s = LevelStamp.of(0, 2, 1)
        assert s.digits == (0, 2, 1)
        assert s.depth == 3

    def test_child_appends(self):
        s = LevelStamp.of(1).child(2)
        assert s.digits == (1, 2)

    def test_tuple_digits_allowed(self):
        s = LevelStamp.of((0, 1), 3)
        assert s.depth == 2
        assert "(0-1)" in str(s)

    def test_bool_digit_rejected(self):
        with pytest.raises(TypeError):
            LevelStamp.of(True)

    def test_invalid_digit_rejected(self):
        with pytest.raises(TypeError):
            LevelStamp.of("x")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            LevelStamp.of((1, "y"))  # type: ignore[arg-type]

    def test_parent(self):
        assert LevelStamp.of(1, 2).parent() == LevelStamp.of(1)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            LevelStamp.root().parent()

    def test_last_digit(self):
        assert LevelStamp.of(1, (2, 3)).last_digit == (2, 3)
        with pytest.raises(ValueError):
            LevelStamp.root().last_digit

    def test_ancestor_at(self):
        s = LevelStamp.of(1, 2, 3)
        assert s.ancestor_at(0) == LevelStamp.root()
        assert s.ancestor_at(2) == LevelStamp.of(1, 2)
        with pytest.raises(ValueError):
            s.ancestor_at(4)


class TestGenealogy:
    def test_ancestor_strict(self):
        a = LevelStamp.of(0)
        b = LevelStamp.of(0, 1)
        assert a.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)
        assert not a.is_ancestor_of(a)

    def test_parent_grandparent_predicates(self):
        g = LevelStamp.of(0)
        p = g.child(1)
        c = p.child(2)
        assert g.is_parent_of(p)
        assert not g.is_parent_of(c)
        assert g.is_grandparent_of(c)
        assert not g.is_grandparent_of(p)

    def test_unrelated(self):
        a = LevelStamp.of(0, 1)
        b = LevelStamp.of(1, 0)
        assert not a.is_ancestor_of(b)
        assert not a.related(b)
        assert a.related(a)

    def test_distance(self):
        a = LevelStamp.of(0)
        d = LevelStamp.of(0, 1, 2, 3)
        assert a.distance_to_descendant(d) == 3
        assert a.distance_to_descendant(a) == 0
        with pytest.raises(ValueError):
            d.distance_to_descendant(a)

    def test_common_ancestor(self):
        a = LevelStamp.of(0, 1, 2)
        b = LevelStamp.of(0, 1, 5, 6)
        assert a.common_ancestor(b) == LevelStamp.of(0, 1)
        assert a.common_ancestor(a) == a

    @given(stamps, digits)
    def test_child_parent_roundtrip(self, stamp, digit):
        assert stamp.child(digit).parent() == stamp

    @given(stamps, stamps)
    def test_ancestor_is_strict_partial_order(self, a, b):
        # antisymmetry
        assert not (a.is_ancestor_of(b) and b.is_ancestor_of(a))
        # irreflexivity
        assert not a.is_ancestor_of(a)

    @given(stamps, stamps, stamps)
    def test_ancestor_transitive(self, a, b, c):
        if a.is_ancestor_of(b) and b.is_ancestor_of(c):
            assert a.is_ancestor_of(c)

    @given(stamps, stamps)
    def test_common_ancestor_is_ancestor_of_both(self, a, b):
        ca = a.common_ancestor(b)
        for s in (a, b):
            assert ca == s or ca.is_ancestor_of(s)

    @given(stamps)
    def test_root_is_weak_ancestor_of_all(self, s):
        root = LevelStamp.root()
        assert root == s or root.is_ancestor_of(s)


class TestOrderingAndRendering:
    def test_sort_key_total_order_mixed_digits(self):
        items = [
            LevelStamp.of(1),
            LevelStamp.of((0, 1)),
            LevelStamp.of(0),
            LevelStamp.root(),
        ]
        ordered = sorted(items, key=LevelStamp.sort_key)
        assert ordered[0] == LevelStamp.root()

    def test_str_int_digits(self):
        assert str(LevelStamp.of(0, 1, 2)) == "0.1.2"

    def test_hashable(self):
        assert len({LevelStamp.of(0), LevelStamp.of(0), LevelStamp.of(1)}) == 2

    @given(stamps, stamps)
    def test_str_injective_on_samples(self, a, b):
        if str(a) == str(b):
            assert a == b


class TestTopmost:
    def test_removes_descendants(self):
        a = LevelStamp.of(0)
        kept = topmost([a, a.child(1), a.child(1).child(2), LevelStamp.of(1)])
        assert set(kept) == {a, LevelStamp.of(1)}

    def test_empty(self):
        assert topmost([]) == ()

    def test_duplicates_collapse(self):
        a = LevelStamp.of(3)
        assert topmost([a, a]) == (a,)

    @given(st.lists(stamps, max_size=12))
    def test_antichain_and_cover(self, items):
        kept = topmost(items)
        # antichain: no kept stamp is an ancestor of another
        for x in kept:
            for y in kept:
                if x is not y:
                    assert not x.is_ancestor_of(y)
        # cover: every input is a weak descendant of exactly one kept stamp
        for s in items:
            covers = [k for k in kept if k == s or k.is_ancestor_of(s)]
            assert len(covers) == 1
