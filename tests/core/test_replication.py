"""Tests for replicated-task execution with majority voting (§5.3)."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core import NoFaultTolerance, ReplicatedExecution
from repro.baselines import tmr_policy
from repro.lang.programs import get_program
from repro.sim import Fault, FaultSchedule, InterpWorkload, TreeWorkload
from repro.sim.machine import run_simulation
from repro.workloads.trees import balanced_tree


def run(workload, policy, faults=FaultSchedule.none(), n=5, seed=0, **cfg):
    return run_simulation(
        workload,
        SimConfig(n_processors=n, seed=seed, **cfg),
        policy=policy,
        faults=faults,
    )


class TestFaultFree:
    def test_matches_oracle(self):
        result = run(InterpWorkload(get_program("fib", 7), name="fib"), ReplicatedExecution(k=3))
        assert result.completed and result.verified is True

    def test_votes_decided_for_every_record(self):
        result = run(TreeWorkload(balanced_tree(3, 2, 10), "bal"), ReplicatedExecution(k=3))
        m = result.metrics
        assert m.votes_decided > 0
        # every decision takes a majority (2 for k=3) of identical votes
        assert m.votes_recorded >= 2 * m.votes_decided

    def test_work_scales_with_k(self):
        """Fault-free task executions grow ~k-fold — the §5.3 price."""
        r1 = run(TreeWorkload(balanced_tree(3, 2, 10), "bal"), ReplicatedExecution(k=1))
        r3 = run(TreeWorkload(balanced_tree(3, 2, 10), "bal"), ReplicatedExecution(k=3))
        assert r3.metrics.tasks_accepted >= 2.5 * r1.metrics.tasks_accepted

    def test_k1_degenerates_to_plain_execution(self):
        result = run(TreeWorkload(balanced_tree(3, 2, 10), "bal"), ReplicatedExecution(k=1))
        assert result.completed and result.verified is True

    def test_k_from_config(self):
        result = run(
            TreeWorkload(balanced_tree(2, 2, 10), "bal"),
            ReplicatedExecution(),
            replication_factor=5,
        )
        assert result.completed and result.verified is True


class TestFaultMasking:
    @pytest.mark.parametrize("victim", [0, 2, 4])
    def test_single_fault_masked_without_recovery(self, victim):
        """k=3 tolerates any single failure with no reissue machinery."""
        result = run(
            TreeWorkload(balanced_tree(3, 2, 30), "bal"),
            ReplicatedExecution(k=3),
            faults=FaultSchedule.single(150.0, victim),
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    def test_fault_masked_in_language_workload(self):
        result = run(
            InterpWorkload(get_program("fib", 8), name="fib"),
            ReplicatedExecution(k=3),
            faults=FaultSchedule.single(300.0, 1),
        )
        assert result.completed and result.verified is True

    def test_k5_masks_two_faults(self):
        result = run(
            TreeWorkload(balanced_tree(3, 2, 30), "bal"),
            ReplicatedExecution(k=5),
            faults=FaultSchedule.of(Fault(100.0, 1), Fault(140.0, 2)),
            n=7,
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    def test_asynchronous_majority_beats_slowest(self):
        """'a node does not have to wait for the slowest answer' — the
        vote decides at the majority, so a dead replica's missing vote
        does not stall completion."""
        no_fault = run(
            TreeWorkload(balanced_tree(3, 2, 30), "bal"),
            ReplicatedExecution(k=3),
        )
        with_fault = run(
            TreeWorkload(balanced_tree(3, 2, 30), "bal"),
            ReplicatedExecution(k=3),
            faults=FaultSchedule.single(150.0, 1),
        )
        assert with_fault.completed
        # losing a processor may slow things, but not unboundedly: the
        # vote never waits on the dead replica
        assert with_fault.makespan < 4 * no_fault.makespan


class TestTmrBaseline:
    def test_tmr_is_k3(self):
        policy = tmr_policy()
        assert isinstance(policy, ReplicatedExecution)
        result = run(
            TreeWorkload(balanced_tree(3, 2, 20), "bal"),
            policy,
            faults=FaultSchedule.single(120.0, 1),
        )
        assert result.completed and result.verified is True


class TestContrastWithNoFT:
    def test_same_fault_stalls_unreplicated_run(self):
        spec = balanced_tree(3, 2, 30)
        stalled = run(
            TreeWorkload(spec, "bal"),
            NoFaultTolerance(),
            faults=FaultSchedule.single(150.0, 1),
            n=5,
        )
        masked = run(
            TreeWorkload(spec, "bal"),
            ReplicatedExecution(k=3),
            faults=FaultSchedule.single(150.0, 1),
        )
        assert not stalled.completed
        assert masked.completed and masked.verified is True
