"""Tests for functional-checkpoint tables (paper §2, §3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.checkpoint import CheckpointTable
from repro.core.packets import ReturnAddress, TaskPacket, WorkSpec
from repro.core.stamps import LevelStamp


def packet(stamp: LevelStamp) -> TaskPacket:
    return TaskPacket(
        stamp=stamp,
        work=WorkSpec(kind="apply", fn_name="f", args=(1,)),
        parent=ReturnAddress(0, 0),
    )


class TestInsertionRule:
    def test_record_new(self):
        table = CheckpointTable()
        s = LevelStamp.of(0)
        cp = table.record(1, s, packet(s), task_uid=7)
        assert cp is not None
        assert cp.stamp == s and cp.dest == 1 and cp.task_uid == 7
        assert table.held() == 1

    def test_descendant_suppressed(self):
        """'If B2 is a descendant of an existing functional checkpoint,
        C does nothing.'"""
        table = CheckpointTable()
        a = LevelStamp.of(0)
        table.record(1, a, packet(a), 0)
        child = a.child(3)
        assert table.record(1, child, packet(child), 0) is None
        assert table.suppressed == 1
        assert table.held() == 1

    def test_same_stamp_suppressed(self):
        table = CheckpointTable()
        s = LevelStamp.of(0)
        table.record(1, s, packet(s), 0)
        assert table.record(1, s, packet(s), 0) is None

    def test_suppression_is_per_destination(self):
        """Topmost-ness is local to one (host, destination) entry."""
        table = CheckpointTable()
        a = LevelStamp.of(0)
        child = a.child(1)
        table.record(1, a, packet(a), 0)
        assert table.record(2, child, packet(child), 0) is not None
        assert table.held() == 2

    def test_ancestor_subsumes_existing_descendants(self):
        table = CheckpointTable()
        a = LevelStamp.of(0)
        child = a.child(1)
        table.record(1, child, packet(child), 0)
        cp = table.record(1, a, packet(a), 0)
        assert cp is not None
        assert [c.stamp for c in table.entry(1)] == [a]

    def test_unrelated_coexist(self):
        table = CheckpointTable()
        for i in range(4):
            s = LevelStamp.of(i)
            table.record(1, s, packet(s), 0)
        assert table.held() == 4
        table.check_invariant()


class TestDrop:
    def test_drop(self):
        table = CheckpointTable()
        s = LevelStamp.of(0)
        table.record(1, s, packet(s), 0)
        assert table.drop(1, s) is True
        assert table.held() == 0
        assert table.drop(1, s) is False

    def test_drop_everywhere(self):
        table = CheckpointTable()
        s = LevelStamp.of(0)
        table.record(1, s, packet(s), 0)
        assert table.drop_everywhere(s) == 1
        assert table.held() == 0


class TestQueries:
    def test_entry_sorted(self):
        table = CheckpointTable()
        for i in (3, 1, 2):
            s = LevelStamp.of(i)
            table.record(1, s, packet(s), 0)
        assert [c.stamp.digits for c in table.entry(1)] == [(1,), (2,), (3,)]

    def test_entry_empty_for_unknown_dest(self):
        assert CheckpointTable().entry(9) == []

    def test_lookup(self):
        table = CheckpointTable()
        s = LevelStamp.of(5)
        table.record(2, s, packet(s), 0)
        assert table.lookup(s).dest == 2
        assert table.lookup(LevelStamp.of(9)) is None

    def test_destinations(self):
        table = CheckpointTable()
        table.record(3, LevelStamp.of(0), packet(LevelStamp.of(0)), 0)
        table.record(1, LevelStamp.of(1), packet(LevelStamp.of(1)), 0)
        assert table.destinations() == [1, 3]

    def test_iter_and_peak(self):
        table = CheckpointTable()
        table.record(1, LevelStamp.of(0), packet(LevelStamp.of(0)), 0)
        table.record(2, LevelStamp.of(1), packet(LevelStamp.of(1)), 0)
        assert len(list(table)) == 2
        assert table.peak_held == 2
        table.drop(1, LevelStamp.of(0))
        assert table.peak_held == 2  # peak is sticky


# Strategy: random insertion/removal sequences must preserve the topmost
# invariant — the paper's §3.2 data-structure contract.
_stamps = st.lists(
    st.integers(min_value=0, max_value=2), min_size=0, max_size=4
).map(lambda ds: LevelStamp(tuple(ds)))
_ops = st.lists(
    st.tuples(st.sampled_from(["record", "drop"]), st.integers(0, 2), _stamps),
    max_size=40,
)


@given(_ops)
def test_topmost_invariant_under_random_ops(ops):
    table = CheckpointTable()
    for op, dest, stamp in ops:
        if op == "record":
            table.record(dest, stamp, packet(stamp), 0)
        else:
            table.drop(dest, stamp)
        table.check_invariant()


@given(_ops)
def test_held_matches_iteration(ops):
    table = CheckpointTable()
    for op, dest, stamp in ops:
        if op == "record":
            table.record(dest, stamp, packet(stamp), 0)
        else:
            table.drop(dest, stamp)
    assert table.held() == len(list(table))


class TestLineageAwareCoverage:
    """The instance-covers refinement: checkpoints from racing activation
    lineages must not suppress each other (the 3-fault regression)."""

    @staticmethod
    def _covers_map(edges):
        """covers(a, b) from an explicit instance-parent mapping."""

        def covers(ancestor, holder):
            uid = holder
            while uid is not None:
                if uid == ancestor:
                    return True
                uid = edges.get(uid)
            return False

        return covers

    def test_same_stamp_different_lineage_both_recorded(self):
        table = CheckpointTable()
        s = LevelStamp.of(0, 1)
        covers = self._covers_map({})  # unrelated holders
        assert table.record(3, s, packet(s), 10, covers=covers) is not None
        assert table.record(3, s, packet(s), 20, covers=covers) is not None
        assert len(table.entry(3)) == 2

    def test_same_lineage_descendant_suppressed(self):
        table = CheckpointTable()
        a = LevelStamp.of(0)
        z = a.child(1)
        covers = self._covers_map({30: 10})  # holder 30 descends from 10
        assert table.record(3, a, packet(a), 10, covers=covers) is not None
        assert table.record(3, z, packet(z), 30, covers=covers) is None
        assert table.suppressed == 1

    def test_cross_lineage_descendant_not_suppressed(self):
        table = CheckpointTable()
        a = LevelStamp.of(0)
        z = a.child(1)
        covers = self._covers_map({})  # 30 does NOT descend from 10
        assert table.record(3, a, packet(a), 10, covers=covers) is not None
        assert table.record(3, z, packet(z), 30, covers=covers) is not None
        assert len(table.entry(3)) == 2

    def test_subsumption_respects_lineage(self):
        table = CheckpointTable()
        a = LevelStamp.of(0)
        z = a.child(1)
        covers = self._covers_map({30: 10})
        table.record(3, z, packet(z), 30, covers=covers)
        # ancestor from the same lineage subsumes the descendant entry
        table.record(3, a, packet(a), 10, covers=covers)
        assert [c.stamp for c in table.entry(3)] == [a]

    def test_drop_by_holder(self):
        table = CheckpointTable()
        s = LevelStamp.of(0)
        covers = self._covers_map({})
        table.record(1, s, packet(s), 10, covers=covers)
        table.record(1, s, packet(s), 20, covers=covers)
        assert table.drop(1, s, task_uid=10) is True
        assert [c.task_uid for c in table.entry(1)] == [20]
