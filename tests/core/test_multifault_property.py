"""Property tests: recovery correctness under *random multi-fault*
schedules (paper §5.2 pushed further than the worked examples).

These are the heaviest guarantees in the suite: for random workloads and
random two-fault schedules, both policies must either produce the
fault-free answer or — in the one pattern the paper concedes (§5.2,
parent+grandparent dying together stranding an orphan under splice
without great-grandparent pointers, with no surviving ancestor
checkpoint) — never produce a *wrong* answer.  In practice the topmost
reissue above the stranded region recovers every schedule these
generators produce; completion is asserted too.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core import RollbackRecovery, SpliceRecovery
from repro.sim import Fault, FaultSchedule, TreeWorkload
from repro.sim.machine import run_simulation
from repro.workloads.trees import random_tree

_POLICIES = {"rollback": RollbackRecovery, "splice": SpliceRecovery}


def _run(spec, policy_name, faults, seed):
    return run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=5, seed=seed),
        policy=_POLICIES[policy_name](),
        faults=faults,
        collect_trace=False,
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    policy=st.sampled_from(["rollback", "splice"]),
    victims=st.lists(
        st.integers(min_value=0, max_value=4), min_size=2, max_size=2, unique=True
    ),
    frac_a=st.floats(min_value=0.05, max_value=0.9),
    frac_b=st.floats(min_value=0.05, max_value=0.9),
)
def test_two_fault_correctness(seed, policy, victims, frac_a, frac_b):
    spec = random_tree(seed=seed, target_tasks=35, max_fanout=3, work_range=(5, 35))
    base = _run(spec, policy, FaultSchedule.none(), seed)
    assert base.completed
    faults = FaultSchedule.of(
        Fault(max(1.0, frac_a * base.makespan), victims[0]),
        Fault(max(1.0, frac_b * base.makespan), victims[1]),
    )
    result = _run(spec, policy, faults, seed)
    assert result.completed, f"{policy} stalled: {result.stall_reason}"
    assert result.verified is True


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    policy=st.sampled_from(["rollback", "splice"]),
    when=st.floats(min_value=0.1, max_value=0.9),
)
def test_same_node_refault_after_recovery(seed, policy, when):
    """The same logical region can be hit twice: kill node 1, then kill
    node 2 (a likely re-placement target) midway through the recovery."""
    spec = random_tree(seed=seed, target_tasks=30, max_fanout=3, work_range=(5, 30))
    base = _run(spec, policy, FaultSchedule.none(), seed)
    t1 = max(1.0, when * base.makespan)
    faults = FaultSchedule.of(Fault(t1, 1), Fault(t1 + 120.0, 2))
    result = _run(spec, policy, faults, seed)
    assert result.completed, f"{policy} stalled: {result.stall_reason}"
    assert result.verified is True


@pytest.mark.parametrize("policy", ["rollback", "splice"])
def test_cascade_three_faults_language_workload(policy):
    """Deterministic heavy case: three staggered faults on fib(10)."""
    from repro.lang.programs import get_program
    from repro.sim import InterpWorkload

    result = run_simulation(
        InterpWorkload(get_program("fib", 10), name="fib"),
        SimConfig(n_processors=6, seed=0),
        policy=_POLICIES[policy](),
        faults=FaultSchedule.of(Fault(200.0, 1), Fault(700.0, 2), Fault(1200.0, 3)),
        collect_trace=False,
    )
    assert result.completed, result.stall_reason
    assert result.verified is True
