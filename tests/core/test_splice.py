"""End-to-end tests for splice recovery (paper §4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, SimConfig
from repro.core import RollbackRecovery, SpliceRecovery
from repro.lang.programs import get_program
from repro.sim import Fault, FaultSchedule, InterpWorkload, Machine, TreeWorkload
from repro.sim.behavior import TreeSpec, TreeTaskSpec
from repro.sim.machine import run_simulation
from repro.workloads.figure1 import PinnedScheduler
from repro.workloads.trees import balanced_tree, chain_tree, random_tree


def run(workload, policy, faults=FaultSchedule.none(), seed=0, n=4, **cfg):
    return run_simulation(
        workload,
        SimConfig(n_processors=n, seed=seed, **cfg),
        policy=policy,
        faults=faults,
    )


class TestFaultFree:
    def test_matches_oracle(self):
        result = run(InterpWorkload(get_program("tak", 7, 4, 2), name="tak"), SpliceRecovery())
        assert result.completed and result.verified is True

    def test_no_twins_without_faults(self):
        result = run(TreeWorkload(balanced_tree(4, 2, 10), "bal"), SpliceRecovery())
        assert result.metrics.twins_created == 0
        assert result.metrics.results_salvaged == 0
        assert result.metrics.steps_wasted == 0


class TestSingleFault:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_recovers_from_any_processor(self, victim):
        result = run(
            InterpWorkload(get_program("fib", 9), name="fib"),
            SpliceRecovery(),
            faults=FaultSchedule.single(300.0, victim),
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    @pytest.mark.parametrize("t", [50.0, 250.0, 600.0, 1000.0])
    def test_recovers_at_any_time(self, t):
        result = run(
            InterpWorkload(get_program("binomial", 9, 4), name="binom"),
            SpliceRecovery(),
            faults=FaultSchedule.single(t, 2),
        )
        assert result.completed and result.verified is True

    def test_salvage_happens_on_late_faults(self):
        spec = balanced_tree(4, 2, 60)
        base = run(TreeWorkload(spec, "bal"), SpliceRecovery())
        result = run(
            TreeWorkload(spec, "bal"),
            SpliceRecovery(),
            faults=FaultSchedule.single(0.6 * base.makespan, 1),
        )
        assert result.completed and result.verified is True
        assert result.metrics.results_salvaged > 0
        assert result.metrics.twins_created > 0

    def test_salvage_beats_rollback_in_orphan_dominant_regime(self):
        """Splice's whole point: when orphan subtrees can finish their
        work, their results are inherited instead of recomputed.  A
        two-level tree with long leaves and a slow detector makes the
        reroute path carry recovery: splice wastes decisively less and
        finishes sooner than rollback for the same mid-run fault."""
        from repro.config import CostModel

        spec = balanced_tree(2, 4, 150)
        cost = CostModel(detector_delay=400.0, detection_timeout=20.0)

        def go(policy, faults=FaultSchedule.none()):
            return run_simulation(
                TreeWorkload(spec, "two-level"),
                SimConfig(n_processors=4, seed=0, cost=cost),
                policy=policy,
                faults=faults,
                collect_trace=False,
            )

        base = go(RollbackRecovery())
        for frac in (0.5, 0.7):
            fault = FaultSchedule.single(frac * base.makespan, 1)
            r_roll = go(RollbackRecovery(), fault)
            r_splice = go(SpliceRecovery(), fault)
            assert r_roll.completed and r_splice.completed
            assert r_splice.verified is True and r_roll.verified is True
            assert r_splice.metrics.results_salvaged > 0
            assert r_splice.metrics.steps_wasted < r_roll.metrics.steps_wasted
            assert r_splice.makespan <= r_roll.makespan


class TestOrphanPaths:
    def _pinned_machine(self, spec, pins, policy, detector_delay=30.0, n=4, pin_once=True):
        config = SimConfig(
            n_processors=n,
            seed=0,
            cost=CostModel(detector_delay=detector_delay, detection_timeout=15.0),
        )
        machine = Machine(config, TreeWorkload(spec, "pinned"), policy)
        machine.scheduler = PinnedScheduler(
            machine.topology, machine.rng, pins, pin_once=pin_once
        )
        machine.scheduler.attach(machine)
        return machine

    def test_orphan_result_rerouted_to_grandparent(self):
        spec = TreeSpec(
            {
                0: TreeTaskSpec(0, 5, (1,)),
                1: TreeTaskSpec(1, 5, (2,)),
                2: TreeTaskSpec(2, 200, ()),
            }
        )
        machine = self._pinned_machine(spec, {0: 0, 1: 1, 2: 2}, SpliceRecovery(),
                                       detector_delay=5000.0)
        result = machine.run(faults=FaultSchedule.single(60.0, 1))
        assert result.completed and result.verified is True
        assert result.metrics.results_orphan_rerouted == 1
        assert result.metrics.results_salvaged == 1
        # the child ran exactly once: no recomputation at all
        accepts = [r for r in result.trace.of_kind("task_accepted")
                   if r.detail["work"] == "<tree 2>"]
        assert len(accepts) == 1

    def test_stranded_orphan_aborts_when_grandparent_also_dead(self):
        """§5.2: parent and grandparent failing together defeats splice for
        that orphan; the topmost reissue above them still recovers."""
        spec = TreeSpec(
            {
                0: TreeTaskSpec(0, 5, (1,)),  # G on node 1
                1: TreeTaskSpec(1, 5, (2,)),  # P on node 2
                2: TreeTaskSpec(2, 150, ()),  # C on node 3 — the orphan
            }
        )
        machine = self._pinned_machine(
            spec, {0: 1, 1: 2, 2: 3}, SpliceRecovery(), detector_delay=5000.0
        )
        # Kill P's and G's nodes together after C is running.
        result = machine.run(
            faults=FaultSchedule.of(Fault(60.0, 1), Fault(60.0, 2))
        )
        assert result.completed, result.stall_reason
        assert result.verified is True
        # the orphan's return found both parent and grandparent dead
        aborted = [r for r in result.trace.of_kind("task_aborted")
                   if r.detail.get("reason") == "stranded-orphan"]
        assert len(aborted) == 1

    def test_duplicate_result_ignored_case7(self):
        spec = TreeSpec(
            {
                0: TreeTaskSpec(0, 5, (1, 4)),
                1: TreeTaskSpec(1, 5, (2, 3)),
                2: TreeTaskSpec(2, 300, (), chunk=20),
                3: TreeTaskSpec(3, 900, ()),
                4: TreeTaskSpec(4, 900, (), chunk=20),
            }
        )
        machine = self._pinned_machine(
            spec, {0: 0, 1: 1, 2: 2, 3: 3, 4: 2}, SpliceRecovery(), detector_delay=10.0
        )
        result = machine.run(faults=FaultSchedule.single(40.0, 1))
        assert result.completed and result.verified is True
        assert result.metrics.results_duplicate >= 1

    def test_result_after_twin_completed_discarded_case8(self):
        spec = TreeSpec(
            {
                0: TreeTaskSpec(0, 5, (1, 4)),
                1: TreeTaskSpec(1, 5, (2,)),
                2: TreeTaskSpec(2, 300, (), chunk=20),
                4: TreeTaskSpec(4, 900, (), chunk=20),
            }
        )
        machine = self._pinned_machine(
            spec, {0: 0, 1: 1, 2: 2, 4: 2}, SpliceRecovery(), detector_delay=10.0
        )
        result = machine.run(faults=FaultSchedule.single(40.0, 1))
        assert result.completed and result.verified is True
        assert result.metrics.results_ignored >= 1


class TestMultiFault:
    def test_disjoint_branch_faults_recover_in_parallel(self):
        """§5.2: 'multiple failures on different branches of a structure do
        not disturb the recovery algorithm at all.'"""
        result = run(
            TreeWorkload(balanced_tree(4, 3, 30), "bal"),
            SpliceRecovery(),
            faults=FaultSchedule.of(Fault(200.0, 1), Fault(200.0, 4)),
            n=6,
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    def test_sequential_faults(self):
        """Regression: racing activation lineages (cases 6/7 after fault 2)
        both spawn the same child stamp; the checkpoint table must keep a
        recovery point per *lineage*, or the live chain deadlocks when the
        third processor dies (stamp-only suppression lost exactly this
        run before the instance-covers refinement)."""
        result = run(
            InterpWorkload(get_program("fib", 10), name="fib"),
            SpliceRecovery(),
            faults=FaultSchedule.of(Fault(200.0, 1), Fault(700.0, 2), Fault(1200.0, 3)),
            n=6,
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    def test_twin_node_dies_too(self):
        """The twin's own processor can die; the next reissue re-twins."""
        spec = chain_tree(10, 60)
        base = run(TreeWorkload(spec, "chain"), SpliceRecovery())
        result = run(
            TreeWorkload(spec, "chain"),
            SpliceRecovery(),
            faults=FaultSchedule.of(
                Fault(0.3 * base.makespan, 1), Fault(0.5 * base.makespan, 2)
            ),
            n=5,
        )
        assert result.completed, result.stall_reason
        assert result.verified is True


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    victim=st.integers(min_value=0, max_value=3),
    fault_frac=st.floats(min_value=0.05, max_value=1.2),
)
def test_recovery_correctness_property(seed, victim, fault_frac):
    """The §4.3 correctness criterion, for splice."""
    spec = random_tree(seed=seed, target_tasks=40, max_fanout=3, work_range=(5, 40))
    base = run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=4, seed=seed),
        policy=SpliceRecovery(),
        collect_trace=False,
    )
    assert base.completed
    result = run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=4, seed=seed),
        policy=SpliceRecovery(),
        faults=FaultSchedule.single(max(1.0, fault_frac * base.makespan), victim),
        collect_trace=False,
    )
    assert result.completed, result.stall_reason
    assert result.verified is True
