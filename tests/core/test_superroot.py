"""Tests for super-root root-task recovery (§4.3.1)."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core import NoFaultTolerance, RollbackRecovery, SpliceRecovery
from repro.core.superroot import (
    ROOT_TASK_STAMP,
    is_super_root,
    root_checkpoint_packet,
    root_executor,
    root_record,
)
from repro.core.packets import SUPER_ROOT_NODE
from repro.sim import FaultSchedule, TreeWorkload
from repro.sim.machine import Machine
from repro.workloads.trees import balanced_tree, chain_tree


def machine(policy, n=4, seed=0):
    return Machine(
        SimConfig(n_processors=n, seed=seed),
        TreeWorkload(balanced_tree(3, 2, 25), "bal"),
        policy,
    )


class TestSuperRootBasics:
    def test_is_super_root(self):
        assert is_super_root(SUPER_ROOT_NODE)
        assert not is_super_root(0)

    def test_root_checkpoint_exists_before_completion(self):
        m = machine(RollbackRecovery())
        m._start_root_host()
        # after starting, the host has demanded the root: the retained
        # packet is the pre-evaluation checkpoint
        m.queue.run(until=lambda: root_record(m) is not None, max_events=100)
        packet = root_checkpoint_packet(m)
        assert packet is not None
        assert packet.stamp == ROOT_TASK_STAMP

    def test_super_root_never_fails_validation(self):
        from repro.sim.failure import Fault

        with pytest.raises(ValueError):
            Fault(10.0, SUPER_ROOT_NODE)


class TestRootFailure:
    @pytest.mark.parametrize("policy_cls", [RollbackRecovery, SpliceRecovery])
    def test_root_task_recovered_when_its_node_dies(self, policy_cls):
        """The pre-evaluation checkpoint regenerates the root: no user
        restart needed."""
        # probe: find where the root landed and when it completes
        probe = machine(policy_cls())
        probe_result = probe.run()
        assert probe_result.completed
        executor = None
        for rec in probe_result.trace.of_kind("task_accepted"):
            if rec.detail["stamp"] == str(ROOT_TASK_STAMP):
                executor = rec.node
                break
        assert executor is not None

        m = machine(policy_cls())
        result = m.run(faults=FaultSchedule.single(probe_result.makespan * 0.4, executor))
        assert result.completed, result.stall_reason
        assert result.verified is True
        # the root stamp was activated at least twice
        root_accepts = [
            r for r in result.trace.of_kind("task_accepted")
            if r.detail["stamp"] == str(ROOT_TASK_STAMP)
        ]
        assert len(root_accepts) >= 2

    def test_without_recovery_root_failure_stalls(self):
        probe = machine(NoFaultTolerance())
        probe_result = probe.run()
        executor = next(
            r.node
            for r in probe_result.trace.of_kind("task_accepted")
            if r.detail["stamp"] == str(ROOT_TASK_STAMP)
        )
        m = machine(NoFaultTolerance())
        result = m.run(faults=FaultSchedule.single(probe_result.makespan * 0.4, executor))
        assert not result.completed

    def test_root_executor_tracked(self):
        m = machine(RollbackRecovery())
        result = m.run()
        assert result.completed
        # after completion the record is fulfilled; executor was recorded
        assert root_executor(m) is not None
