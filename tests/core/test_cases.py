"""Tests for the Figure-5 case classification and drivers (§4.1)."""

from __future__ import annotations

import pytest

from repro.analysis.cases_driver import CASE_DRIVERS
from repro.core.cases import CaseTimeline, classify


class TestClassify:
    def _t(self, **kw):
        base = dict(
            p_failed=100.0,
            p_invoked=10.0,
            p_twin_invoked=150.0,
            p_twin_completed=400.0,
            c_invoked=50.0,
            c_completed=None,
            c_twin_invoked=200.0,
            c_twin_completed=300.0,
        )
        base.update(kw)
        return CaseTimeline(**base)

    def test_case1_never_invoked(self):
        assert classify(self._t(c_invoked=None, c_completed=None)) == 1

    def test_case2_never_completes(self):
        assert classify(self._t(c_completed=None)) == 2

    def test_case3_before_p_dies(self):
        assert classify(self._t(c_completed=90.0)) == 3

    def test_case4_before_twin_invoked(self):
        assert classify(self._t(c_completed=120.0)) == 4

    def test_case4_twin_never_invoked(self):
        assert classify(self._t(c_completed=120.0, p_twin_invoked=None,
                                p_twin_completed=None, c_twin_invoked=None,
                                c_twin_completed=None)) == 4

    def test_case5_before_c_twin_invoked(self):
        assert classify(self._t(c_completed=180.0)) == 5

    def test_case5_c_twin_never_invoked(self):
        assert classify(self._t(c_completed=180.0, c_twin_invoked=None,
                                c_twin_completed=None)) == 5

    def test_case6_during_c_twin(self):
        assert classify(self._t(c_completed=250.0)) == 6

    def test_case7_after_c_twin_completed(self):
        assert classify(self._t(c_completed=350.0)) == 7

    def test_case8_after_p_twin_completed(self):
        assert classify(self._t(c_completed=450.0)) == 8


@pytest.mark.parametrize("case", sorted(CASE_DRIVERS))
def test_driver_reaches_its_case(case):
    """Each driver steers the simulator into its intended ordering, and
    the run stays correct — the executable form of §4.1's argument."""
    outcome = CASE_DRIVERS[case]()
    assert outcome.observed_case == case, (
        f"expected case {case}, observed {outcome.observed_case}"
    )
    assert outcome.result.completed, outcome.result.stall_reason
    assert outcome.result.verified is True


def test_salvage_cases_consume_orphan_result():
    """Cases 3-7 involve an orphan result reaching the twin."""
    for case in (4, 5, 6):
        outcome = CASE_DRIVERS[case]()
        assert outcome.result.metrics.results_salvaged >= 1


def test_case7_sees_duplicate():
    outcome = CASE_DRIVERS[7]()
    assert outcome.result.metrics.results_duplicate >= 1


def test_case8_discards_late_result():
    outcome = CASE_DRIVERS[8]()
    assert outcome.result.metrics.results_ignored >= 1
