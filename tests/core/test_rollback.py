"""End-to-end tests for rollback recovery (paper §3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core import NoFaultTolerance, RollbackRecovery
from repro.lang.programs import get_program
from repro.sim import Fault, FaultSchedule, InterpWorkload, Machine, TreeWorkload
from repro.sim.machine import run_simulation
from repro.workloads.trees import balanced_tree, chain_tree, random_tree


def run(workload, policy, faults=FaultSchedule.none(), seed=0, n=4, **cfg):
    return run_simulation(
        workload,
        SimConfig(n_processors=n, seed=seed, **cfg),
        policy=policy,
        faults=faults,
    )


class TestFaultFree:
    def test_matches_oracle(self):
        result = run(InterpWorkload(get_program("fib", 9), name="fib"), RollbackRecovery())
        assert result.completed and result.verified is True

    def test_identical_to_noft_makespan(self):
        """Checkpointing must not perturb fault-free scheduling."""
        w = lambda: InterpWorkload(get_program("fib", 9), name="fib")
        r_none = run(w(), NoFaultTolerance())
        r_roll = run(w(), RollbackRecovery())
        assert r_roll.makespan == r_none.makespan
        assert r_roll.metrics.steps_wasted == 0

    def test_checkpoints_recorded_and_dropped(self):
        result = run(TreeWorkload(balanced_tree(3, 2, 10), "bal"), RollbackRecovery())
        m = result.metrics
        assert m.checkpoints_recorded > 0
        # every checkpoint is dropped when its child's result arrives
        assert m.checkpoints_dropped == m.checkpoints_recorded

    def test_peak_checkpoints_bounded_by_tasks(self):
        result = run(TreeWorkload(balanced_tree(4, 2, 10), "bal"), RollbackRecovery())
        assert 0 < result.metrics.checkpoint_peak_held <= result.metrics.tasks_accepted


class TestSingleFault:
    @pytest.mark.parametrize("victim", [0, 1, 2, 3])
    def test_recovers_from_any_processor(self, victim):
        result = run(
            InterpWorkload(get_program("fib", 9), name="fib"),
            RollbackRecovery(),
            faults=FaultSchedule.single(300.0, victim),
        )
        assert result.completed, result.stall_reason
        assert result.verified is True

    @pytest.mark.parametrize("t", [50.0, 200.0, 500.0, 800.0])
    def test_recovers_at_any_time(self, t):
        result = run(
            InterpWorkload(get_program("fib", 9), name="fib"),
            RollbackRecovery(),
            faults=FaultSchedule.single(t, 2),
        )
        assert result.completed and result.verified is True

    def test_fault_after_completion_is_harmless(self):
        w = InterpWorkload(get_program("fib", 6), name="fib")
        base = run(w, RollbackRecovery())
        result = run(
            InterpWorkload(get_program("fib", 6), name="fib"),
            RollbackRecovery(),
            faults=FaultSchedule.single(base.makespan + 1000.0, 1),
        )
        assert result.completed and result.verified is True

    def test_noft_stalls_where_rollback_recovers(self):
        """The control: the same fault defeats the no-recovery policy."""
        spec = balanced_tree(4, 2, 25)
        stalled = run(
            TreeWorkload(spec, "bal"),
            NoFaultTolerance(),
            faults=FaultSchedule.single(150.0, 1),
        )
        recovered = run(
            TreeWorkload(spec, "bal"),
            RollbackRecovery(),
            faults=FaultSchedule.single(150.0, 1),
        )
        assert not stalled.completed and stalled.stall_reason is not None
        assert recovered.completed and recovered.verified is True

    def test_orphans_aborted_and_waste_counted(self):
        result = run(
            TreeWorkload(chain_tree(12, 40), "chain"),
            RollbackRecovery(),
            faults=FaultSchedule.single(200.0, 1),
        )
        assert result.completed and result.verified is True
        assert result.metrics.steps_wasted > 0

    def test_late_fault_costs_more_than_early(self):
        """§6: 'if a fault happens at a later stage of the evaluation, the
        rollback recovery may be costly.'  Cost = completion-time slowdown
        (wasted *steps* can be large for early faults too, because orphan
        subtrees run to completion before aborting)."""
        spec = chain_tree(16, 40)
        base = run(TreeWorkload(spec, "chain"), RollbackRecovery())
        early = run(
            TreeWorkload(spec, "chain"),
            RollbackRecovery(),
            faults=FaultSchedule.single(0.15 * base.makespan, 1),
        )
        late = run(
            TreeWorkload(spec, "chain"),
            RollbackRecovery(),
            faults=FaultSchedule.single(0.85 * base.makespan, 1),
        )
        assert early.completed and late.completed
        assert late.makespan > early.makespan
        assert late.makespan > base.makespan


class TestMultiFault:
    def test_two_faults_different_times(self):
        result = run(
            InterpWorkload(get_program("fib", 9), name="fib"),
            RollbackRecovery(),
            faults=FaultSchedule.of(Fault(200.0, 1), Fault(500.0, 3)),
            n=5,
        )
        assert result.completed and result.verified is True

    def test_simultaneous_faults(self):
        result = run(
            InterpWorkload(get_program("fib", 9), name="fib"),
            RollbackRecovery(),
            faults=FaultSchedule.of(Fault(250.0, 1), Fault(250.0, 2)),
            n=6,
        )
        assert result.completed and result.verified is True

    def test_all_but_one_processor_fails(self):
        result = run(
            TreeWorkload(balanced_tree(3, 2, 20), "bal"),
            RollbackRecovery(),
            faults=FaultSchedule.of(Fault(100.0, 1), Fault(180.0, 2), Fault(260.0, 3)),
        )
        assert result.completed and result.verified is True


class TestSchedulers:
    @pytest.mark.parametrize("scheduler", ["gradient", "random", "round_robin", "static"])
    def test_recovery_under_every_scheduler(self, scheduler):
        result = run(
            TreeWorkload(balanced_tree(4, 2, 20), "bal"),
            RollbackRecovery(),
            faults=FaultSchedule.single(200.0, 1),
            scheduler=scheduler,
        )
        assert result.completed and result.verified is True


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def one():
            return run(
                TreeWorkload(balanced_tree(4, 2, 15), "bal"),
                RollbackRecovery(),
                faults=FaultSchedule.single(180.0, 2),
                seed=11,
            )

        a, b = one(), one()
        assert a.makespan == b.makespan
        assert a.metrics.tasks_accepted == b.metrics.tasks_accepted
        assert [str(r) for r in a.trace] == [str(r) for r in b.trace]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    victim=st.integers(min_value=0, max_value=3),
    fault_frac=st.floats(min_value=0.05, max_value=1.2),
)
def test_recovery_correctness_property(seed, victim, fault_frac):
    """THE theorem (§4.3): for any single fault at any time on any
    processor, the recovered answer equals the fault-free answer."""
    spec = random_tree(seed=seed, target_tasks=40, max_fanout=3, work_range=(5, 40))
    base = run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=4, seed=seed),
        policy=RollbackRecovery(),
        collect_trace=False,
    )
    assert base.completed
    result = run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=4, seed=seed),
        policy=RollbackRecovery(),
        faults=FaultSchedule.single(max(1.0, fault_frac * base.makespan), victim),
        collect_trace=False,
    )
    assert result.completed, result.stall_reason
    assert result.verified is True
