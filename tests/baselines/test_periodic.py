"""Tests for the periodic-global-checkpointing baseline."""

from __future__ import annotations

import pytest

from repro.baselines import PeriodicCheckpointSimulator
from repro.config import CostModel, SimConfig
from repro.core import NoFaultTolerance
from repro.errors import SimError
from repro.sim import TreeWorkload
from repro.sim.machine import run_simulation
from repro.workloads.trees import balanced_tree, chain_tree, wide_tree


class TestFaultFree:
    def test_completes_with_expected_value(self):
        spec = balanced_tree(4, 2, 20)
        result = PeriodicCheckpointSimulator(spec, 4, interval=200.0).run()
        assert result.completed
        assert result.value == spec.expected_value()

    def test_checkpoints_taken_scale_with_interval(self):
        spec = balanced_tree(5, 2, 30)
        fine = PeriodicCheckpointSimulator(spec, 4, interval=50.0).run()
        coarse = PeriodicCheckpointSimulator(spec, 4, interval=500.0).run()
        assert fine.checkpoints_taken > coarse.checkpoints_taken
        assert fine.checkpoint_time > coarse.checkpoint_time

    def test_checkpoint_overhead_slows_makespan(self):
        """§2's complaint: synchronization costs fault-free time."""
        spec = balanced_tree(5, 2, 30)
        fine = PeriodicCheckpointSimulator(spec, 4, interval=50.0).run()
        coarse = PeriodicCheckpointSimulator(spec, 4, interval=10_000.0).run()
        assert fine.makespan > coarse.makespan

    def test_invalid_args(self):
        spec = balanced_tree(2, 2, 10)
        with pytest.raises(SimError):
            PeriodicCheckpointSimulator(spec, 0, interval=10.0)
        with pytest.raises(SimError):
            PeriodicCheckpointSimulator(spec, 2, interval=0.0)

    @pytest.mark.parametrize("builder", [
        lambda: balanced_tree(3, 3, 15),
        lambda: chain_tree(12, 20),
        lambda: wide_tree(20, 30),
    ])
    def test_various_shapes(self, builder):
        spec = builder()
        result = PeriodicCheckpointSimulator(spec, 3, interval=100.0).run()
        assert result.completed and result.value == spec.expected_value()

    def test_agrees_with_machine_roughly(self):
        """Same cost model, same tree: the simplified executor's fault-free
        makespan stays within 2x of the full machine's (they differ by
        network latency, which the baseline doesn't model)."""
        spec = balanced_tree(4, 2, 50)
        machine_result = run_simulation(
            TreeWorkload(spec, "bal"),
            SimConfig(n_processors=4, seed=0),
            policy=NoFaultTolerance(),
            collect_trace=False,
        )
        baseline = PeriodicCheckpointSimulator(spec, 4, interval=10**9).run()
        assert baseline.makespan <= machine_result.makespan  # no latency
        assert machine_result.makespan < 2.5 * baseline.makespan


class TestFailure:
    def test_restore_loses_work_since_snapshot(self):
        spec = balanced_tree(5, 2, 30)
        base = PeriodicCheckpointSimulator(spec, 4, interval=100.0).run()
        faulted = PeriodicCheckpointSimulator(spec, 4, interval=100.0).run(
            fault_time=base.makespan * 0.6
        )
        assert faulted.completed
        assert faulted.restores == 1
        assert faulted.lost_work > 0
        assert faulted.makespan > base.makespan

    def test_longer_interval_loses_more_work(self):
        """The §2 trade-off: loose checkpointing loses more on failure."""
        spec = balanced_tree(5, 2, 30)
        base = PeriodicCheckpointSimulator(spec, 4, interval=100.0).run()
        t = base.makespan * 0.7
        tight = PeriodicCheckpointSimulator(spec, 4, interval=80.0).run(fault_time=t)
        loose = PeriodicCheckpointSimulator(spec, 4, interval=10_000.0).run(fault_time=t)
        assert loose.lost_work > tight.lost_work

    def test_failure_before_first_checkpoint_restarts(self):
        spec = balanced_tree(4, 2, 30)
        result = PeriodicCheckpointSimulator(spec, 4, interval=10_000.0).run(
            fault_time=100.0
        )
        assert result.completed
        assert result.lost_work > 0

    def test_all_processors_failing_raises(self):
        spec = balanced_tree(2, 2, 10)
        with pytest.raises(SimError):
            PeriodicCheckpointSimulator(spec, 1, interval=50.0).run(fault_time=10.0)
