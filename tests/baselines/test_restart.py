"""Tests for the whole-program-restart baseline."""

from __future__ import annotations

from repro.baselines import restart_run
from repro.config import SimConfig
from repro.sim import TreeWorkload
from repro.sim.failure import Fault
from repro.workloads.trees import balanced_tree


def factory():
    return TreeWorkload(balanced_tree(4, 2, 25), "bal")


class TestRestart:
    def test_no_fault_no_overhead(self):
        result = restart_run(factory, SimConfig(n_processors=4, seed=0))
        assert result.completed
        assert result.restarts == 0
        assert result.wasted_steps == 0

    def test_fault_restarts_and_wastes(self):
        base = restart_run(factory, SimConfig(n_processors=4, seed=0))
        result = restart_run(
            factory,
            SimConfig(n_processors=4, seed=0),
            fault=Fault(base.makespan * 0.5, 1),
        )
        assert result.completed
        assert result.restarts == 1
        assert result.wasted_steps > 0
        assert result.makespan > base.makespan

    def test_fault_after_completion_no_restart(self):
        base = restart_run(factory, SimConfig(n_processors=4, seed=0))
        result = restart_run(
            factory,
            SimConfig(n_processors=4, seed=0),
            fault=Fault(base.makespan + 100.0, 1),
        )
        assert result.restarts == 0
        assert result.makespan == base.makespan

    def test_later_fault_wastes_more(self):
        base = restart_run(factory, SimConfig(n_processors=4, seed=0))
        early = restart_run(
            factory, SimConfig(n_processors=4, seed=0), fault=Fault(base.makespan * 0.2, 1)
        )
        late = restart_run(
            factory, SimConfig(n_processors=4, seed=0), fault=Fault(base.makespan * 0.9, 1)
        )
        assert late.wasted_steps > early.wasted_steps
        assert late.makespan > early.makespan

    def test_summary(self):
        result = restart_run(factory, SimConfig(n_processors=4, seed=0))
        assert "restart" in result.summary()
