"""Tests for the perf subsystem: registry, runner, compare, and CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.perf import all_benches, compare, failures, get_bench, run_bench, run_suite
from repro.perf.bench import BenchSpec
from repro.perf.runner import DEFAULT_THRESHOLD, compare_table, suite_table
from repro.util.jsonio import canonical_dumps, write_canonical_json


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def spec_returning(value, name="micro-toy", trials=3):
    return BenchSpec(
        name=name,
        kind="micro",
        title="toy",
        description="toy bench",
        factory=lambda quick: (lambda: dict(value)),
        trials=trials,
        warmup=1,
        quick_trials=2,
        quick_warmup=0,
    )


def fake_payload(**medians):
    return {
        "schema": "repro-perf/1",
        "benchmarks": {
            name: {"median_s": median, "checks": {"x": 1}}
            for name, median in medians.items()
        },
    }


class TestRegistry:
    def test_builtin_benchmarks_registered(self):
        names = set(all_benches())
        assert {
            "macro-faultfree",
            "macro-faultfree-traced",
            "macro-rollback-storm",
            "macro-splice-storm",
            "macro-sweep",
            "micro-event-queue",
            "micro-checkpoint-table",
            "micro-stamp-ordering",
            "micro-network-delivery",
        } <= names

    def test_names_carry_kind_prefix(self):
        for name, spec in all_benches().items():
            assert name.startswith(f"{spec.kind}-")

    def test_macros_listed_before_micros(self):
        kinds = [spec.kind for spec in all_benches().values()]
        assert kinds == sorted(kinds, key=("macro", "micro").index)

    def test_unknown_bench_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_bench("macro-nonexistent")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError, match="kind prefix"):
            spec_returning({"x": 1}, name="toy-wrong")

    def test_quick_mode_reduces_trials_not_workload(self):
        spec = get_bench("macro-faultfree")
        warmup_full, trials_full = spec.counts(quick=False)
        warmup_quick, trials_quick = spec.counts(quick=True)
        assert trials_quick < trials_full and warmup_quick < warmup_full


class TestRunBench:
    def test_reports_median_iqr_and_checks(self):
        rec = run_bench(spec_returning({"answer": 42}))
        assert rec["trials"] == 3 and len(rec["times_s"]) == 3
        assert rec["median_s"] >= 0 and rec["iqr_s"] >= 0
        assert rec["checks"] == {"answer": 42}

    def test_nondeterministic_checks_fail_loudly(self):
        counter = iter(range(100))
        spec = BenchSpec(
            name="micro-drift",
            kind="micro",
            title="drift",
            description="returns a different value each trial",
            factory=lambda quick: (lambda: {"n": next(counter)}),
            trials=2,
            warmup=0,
        )
        with pytest.raises(AssertionError, match="nondeterministic"):
            run_bench(spec)

    def test_run_suite_payload_shape(self):
        payload = run_suite(names=["micro-stamp-ordering"], quick=True)
        assert payload["schema"] == "repro-perf/1"
        assert payload["quick"] is True
        rec = payload["benchmarks"]["micro-stamp-ordering"]
        assert rec["kind"] == "micro" and rec["checks"]["antichain"] == 512
        assert "micro-stamp-ordering" in suite_table(payload)


class TestCompare:
    def test_ok_faster_and_regression(self):
        base = fake_payload(**{"macro-a": 1.0, "macro-b": 1.0, "macro-c": 1.0})
        cur = fake_payload(**{"macro-a": 1.1, "macro-b": 0.2, "macro-c": 9.0})
        by_name = {d.name: d for d in compare(base, cur, threshold=2.0)}
        assert by_name["macro-a"].status == "ok"
        assert by_name["macro-b"].status == "faster"
        assert by_name["macro-c"].status == "REGRESSION"
        assert [d.name for d in failures(by_name.values())] == ["macro-c"]

    def test_missing_bench_fails_new_bench_informs(self):
        base = fake_payload(**{"macro-old": 1.0})
        cur = fake_payload(**{"macro-new": 1.0})
        by_name = {d.name: d for d in compare(base, cur)}
        assert by_name["macro-old"].status == "missing"
        assert by_name["macro-new"].status == "new"
        assert {d.name for d in failures(by_name.values())} == {"macro-old"}

    def test_diverged_checks_fail_regardless_of_speed(self):
        base = fake_payload(**{"macro-a": 1.0})
        cur = fake_payload(**{"macro-a": 1.0})
        cur["benchmarks"]["macro-a"]["checks"] = {"x": 2}
        deltas = compare(base, cur)
        assert deltas[0].status == "CHECKS-DIVERGED"
        assert failures(deltas) == deltas

    def test_zero_baseline_median_still_gates(self):
        base = fake_payload(**{"micro-fast": 0.0, "micro-both-zero": 0.0})
        cur = fake_payload(**{"micro-fast": 0.5, "micro-both-zero": 0.0})
        by_name = {d.name: d for d in compare(base, cur)}
        assert by_name["micro-fast"].status == "REGRESSION"
        assert by_name["micro-both-zero"].status == "ok"

    def test_tables_render(self):
        deltas = compare(fake_payload(**{"macro-a": 1.0}), fake_payload(**{"macro-a": 1.0}))
        assert "macro-a" in compare_table(deltas)


class TestPerfCli:
    def test_perf_list(self):
        code, text = run_cli("perf", "list")
        assert code == 0
        assert "macro-faultfree" in text and "micro-event-queue" in text

    def test_perf_run_writes_canonical_json(self, tmp_path):
        out_path = tmp_path / "bench.json"
        code, text = run_cli(
            "perf", "run", "--quick", "--only", "micro-stamp-ordering",
            "--out", str(out_path),
        )
        assert code == 0 and f"wrote {out_path}" in text
        payload = json.loads(out_path.read_text())
        assert out_path.read_text() == canonical_dumps(payload)
        assert "micro-stamp-ordering" in payload["benchmarks"]

    def test_perf_run_unknown_bench(self):
        code, _ = run_cli("perf", "run", "--only", "micro-nope", "--no-write")
        assert code == 2

    def test_quick_mode_never_writes_the_baseline_by_default(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, text = run_cli("perf", "run", "--quick", "--only", "micro-stamp-ordering")
        assert code == 0
        assert "quick mode: no file written" in text
        assert not (tmp_path / "BENCH_core.json").exists()

    def test_partial_suite_never_writes_the_baseline_by_default(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, text = run_cli("perf", "run", "--only", "micro-stamp-ordering")
        assert code == 0
        assert "partial suite: no file written" in text
        assert not (tmp_path / "BENCH_core.json").exists()

    def test_perf_compare_gates(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        write_canonical_json(str(base), fake_payload(**{"macro-a": 1.0}))
        write_canonical_json(str(cur), fake_payload(**{"macro-a": 1.1}))
        code, text = run_cli("perf", "compare", str(base), str(cur))
        assert code == 0 and "perf gate ok" in text
        write_canonical_json(str(cur), fake_payload(**{"macro-a": 99.0}))
        code, _ = run_cli("perf", "compare", str(base), str(cur))
        assert code == 1

    def test_perf_compare_threshold_flag(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        write_canonical_json(str(base), fake_payload(**{"macro-a": 1.0}))
        write_canonical_json(str(cur), fake_payload(**{"macro-a": 1.5}))
        assert run_cli("perf", "compare", str(base), str(cur), "--threshold", "1.2")[0] == 1
        assert run_cli("perf", "compare", str(base), str(cur), "--threshold", "2.0")[0] == 0

    def test_perf_compare_missing_baseline(self, tmp_path):
        code, _ = run_cli("perf", "compare", str(tmp_path / "absent.json"))
        assert code == 2

    def test_default_threshold_is_generous(self):
        # Cross-machine comparisons are the norm; small drift must pass.
        assert DEFAULT_THRESHOLD >= 1.5


class TestSharedCanonicalWriter:
    def test_exp_sweep_json_uses_shared_writer(self):
        from repro.exp.runner import SweepResult

        sweep = SweepResult(scenario="s", key="k", points=[{"index": 0}])
        assert sweep.to_json() == canonical_dumps(sweep.payload())

    def test_canonical_dumps_is_byte_stable(self):
        a = canonical_dumps({"b": 1, "a": [1, 2]})
        b = canonical_dumps({"a": [1, 2], "b": 1})
        assert a == b and a.endswith("\n")

    def test_write_canonical_json_roundtrip(self, tmp_path):
        path = tmp_path / "x" / "y.json"
        text = write_canonical_json(str(path), {"k": 1})
        assert path.read_text() == text == canonical_dumps({"k": 1})
