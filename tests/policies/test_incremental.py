"""End-to-end tests for HEAL-style incremental repair (repro.policies).

The defining property: recovery stays online.  No waiter is ever
aborted for pointing at a dead child (``args-unobtainable`` never
appears in the trace), and the persist modes differ measurably in how
much work the repair pass reissues — ``hybrid`` suppresses waiters
already covered by a replayed checkpoint, so it reissues the fewest.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment, PolicySpec
from repro.check import check_spec
from repro.policies import PERSIST_MODES, IncrementalRecovery

#: A regime where the three persist modes measurably diverge: a wide
#: tree with two mid-run crashes, so both checkpoint replay and the
#: waiter scan contribute reissues.
TWO_FAULTS = ((0.3, 1), (0.5, 2))


def build(policy, faults=()):
    exp = (
        Experiment.workload("balanced:4:3:25")
        .policy(policy)
        .processors(6)
        .seed(0)
        .base_policy("rollback")
    )
    for frac, node in faults:
        exp = exp.fault(frac, node)
    return exp.build()


def checked(policy, faults=()):
    return check_spec(build(policy, faults))


def reissue_reasons(handle):
    out = {}
    for r in handle.result.trace.records:
        if r.kind == "recovery_reissue":
            out[r.detail["reason"]] = out.get(r.detail["reason"], 0) + 1
    return out


def abort_reasons(handle):
    out = {}
    for r in handle.result.trace.records:
        if r.kind == "task_aborted":
            out[r.detail["reason"]] = out.get(r.detail["reason"], 0) + 1
    return out


class TestConstruction:
    def test_persist_modes_are_pinned(self):
        assert PERSIST_MODES == ("volatile", "durable", "hybrid")

    def test_rejects_unknown_persist_mode(self):
        with pytest.raises(ValueError, match="persist"):
            IncrementalRecovery(persist="paranoid")

    def test_policyspec_builds_the_class(self):
        assert isinstance(PolicySpec.parse("incremental").build(), IncrementalRecovery)
        for mode in PERSIST_MODES:
            policy = PolicySpec.parse(f"incremental:persist={mode}").build()
            assert policy.name == "incremental" and policy.persist == mode


class TestOnlineRepair:
    @pytest.mark.parametrize("mode", PERSIST_MODES)
    def test_recovers_correctly_in_every_persist_mode(self, mode):
        handle, report = checked(f"incremental:persist={mode}", faults=((0.6, 2),))
        assert handle.completed and handle.result.correct
        assert report.ok

    @pytest.mark.parametrize("mode", PERSIST_MODES)
    def test_no_starved_waiter_aborts_ever(self, mode):
        # Rollback's second act — abort every waiter whose args became
        # unobtainable — is exactly what incremental repair replaces.
        handle, _ = checked(f"incremental:persist={mode}", faults=TWO_FAULTS)
        assert handle.completed
        assert "args-unobtainable" not in abort_reasons(handle)
        # the only aborts left are the orphan-return path, inherited
        # from the base policy's undeliverable-result handling

    def test_bare_incremental_is_volatile(self):
        handle_bare, _ = checked("incremental", faults=TWO_FAULTS)
        handle_vol, _ = checked("incremental:persist=volatile", faults=TWO_FAULTS)
        # the records differ only in the spec string; execution is identical
        assert handle_bare.makespan == handle_vol.makespan
        assert handle_bare.value == handle_vol.value
        assert (
            handle_bare.result.metrics.tasks_reissued
            == handle_vol.result.metrics.tasks_reissued
        )
        assert reissue_reasons(handle_bare) == reissue_reasons(handle_vol)

    def test_volatile_repairs_from_the_waiter_scan_alone(self):
        handle, _ = checked("incremental:persist=volatile", faults=((0.6, 2),))
        assert set(reissue_reasons(handle)) == {"incremental-repair"}

    def test_durable_replays_the_table_then_scans(self):
        reasons = reissue_reasons(checked(
            "incremental:persist=durable", faults=((0.6, 2),)
        )[0])
        assert reasons["incremental-replay"] > 0
        assert reasons["incremental-repair"] > 0

    def test_hybrid_suppresses_covered_waiters(self):
        # every waiter lost with the victim sits under a replayed
        # checkpoint stamp on this schedule, so the scan adds nothing
        reasons = reissue_reasons(checked(
            "incremental:persist=hybrid", faults=((0.6, 2),)
        )[0])
        assert set(reasons) == {"incremental-replay"}

    def test_persist_modes_diverge_measurably(self):
        by_mode = {
            mode: checked(f"incremental:persist={mode}", faults=TWO_FAULTS)[0]
            for mode in PERSIST_MODES
        }
        ri = {m: h.result.metrics.tasks_reissued for m, h in by_mode.items()}
        # hybrid regenerates each lost region exactly once (fewest);
        # volatile and durable both pay duplicate regeneration
        assert ri["hybrid"] < ri["volatile"]
        assert ri["hybrid"] < ri["durable"]
        # all three still converge to the same correct value
        values = {h.value for h in by_mode.values()}
        assert len(values) == 1


class TestDeterminism:
    def test_same_spec_same_bytes(self):
        a, _ = checked("incremental:persist=hybrid", faults=TWO_FAULTS)
        b, _ = checked("incremental:persist=hybrid", faults=TWO_FAULTS)
        assert a.to_json() == b.to_json()
