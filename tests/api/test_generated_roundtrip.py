"""Round-trip properties for *generated* nemesis schedules.

``tests/api/test_roundtrip.py`` pins the registered values; this suite
extends the guarantee to the random schedules the adversarial searcher
draws: every generated :class:`NemesisSpec` must parse back from its
spec string byte-identically, survive the JSON round trip, and embed
into a valid RunSpec — otherwise a search ledger could name a
reproducer that the grammar cannot replay.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Experiment, NemesisSpec, RunSpec
from repro.faults import (
    GENERATABLE_MODELS,
    random_clause,
    random_nemesis,
)

SEEDS = range(40)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_schedule_roundtrips_byte_identically(seed):
    spec = random_nemesis(random.Random(seed), n_processors=4, max_clauses=3)
    text = spec.to_spec_str()
    assert NemesisSpec.parse(text) == spec
    assert NemesisSpec.parse(text).to_spec_str() == text  # fixed point
    assert NemesisSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("model", GENERATABLE_MODELS)
def test_every_generatable_model_roundtrips(model):
    rng = random.Random(0)
    for _ in range(10):
        clause = random_clause(rng, model, n_processors=8)
        spec = NemesisSpec((clause,))
        text = spec.to_spec_str()
        assert NemesisSpec.parse(text) == spec
        assert NemesisSpec.parse(text).to_spec_str() == text


@pytest.mark.parametrize("seed", list(SEEDS)[:10])
def test_generated_schedule_embeds_into_a_valid_runspec(seed):
    nemesis = random_nemesis(random.Random(seed), n_processors=4)
    spec = (
        Experiment.workload("balanced:3:2:10").processors(4)
        .nemesis(nemesis).build()
    )
    assert RunSpec.from_json(spec.to_json()) == spec
    assert spec.nemesis.to_spec_str() == nemesis.to_spec_str()


def test_generation_is_a_pure_function_of_the_rng():
    a = [random_nemesis(random.Random(7), 4, max_clauses=3) for _ in range(1)]
    b = [random_nemesis(random.Random(7), 4, max_clauses=3) for _ in range(1)]
    assert a == b
    stream_a = random.Random(7)
    stream_b = random.Random(7)
    for _ in range(10):
        assert random_nemesis(stream_a, 4) == random_nemesis(stream_b, 4)


def test_generated_schedules_respect_the_crash_family_cap():
    rng = random.Random(11)
    for _ in range(50):
        spec = random_nemesis(rng, 4, max_clauses=3)
        crash_family = [c for c in spec.clauses if c.model in ("crash", "cascade")]
        assert len(crash_family) <= 1
        for clause in crash_family:
            # node 0 hosts the root: never a seed victim
            assert dict(clause.params)["node"] != 0


def test_model_subset_is_honored():
    rng = random.Random(3)
    for _ in range(20):
        spec = random_nemesis(rng, 4, models=("jitter", "grayfail"))
        assert {c.model for c in spec.clauses} <= {"jitter", "grayfail"}


def test_unknown_model_subset_is_an_error():
    with pytest.raises(ValueError):
        random_nemesis(random.Random(0), 4, models=("nope",))
