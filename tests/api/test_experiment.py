"""Tests for the Experiment builder, Session runner, and RunHandle."""

from __future__ import annotations

import pytest

from repro.api import Experiment, FaultSpec, RunSpec, Session, SpecError
from repro.exp.points import run_machine_point

WORKLOAD = "balanced:2:2:5"


class TestExperimentBuilder:
    def test_chain_starts_on_the_class(self):
        spec = Experiment.workload(WORKLOAD).policy("splice").processors(2).build()
        assert isinstance(spec, RunSpec)
        assert spec.policy.name == "splice" and spec.machine.processors == 2

    def test_chain_starts_on_an_instance_too(self):
        spec = Experiment().workload(WORKLOAD).seed(3).build()
        assert spec.seed == 3

    def test_class_start_does_not_share_state(self):
        a = Experiment.workload(WORKLOAD).policy("splice")
        b = Experiment.workload(WORKLOAD)
        assert b.build().policy.name == "rollback"
        assert a.build().policy.name == "splice"

    def test_machine_knobs(self):
        spec = (
            Experiment.workload(WORKLOAD)
            .topology("ring")
            .scheduler("static")
            .replication(5)
            .cost(detector_delay=99.0)
            .build()
        )
        assert spec.machine.topology == "ring"
        assert spec.machine.scheduler == "static"
        assert spec.machine.replication == 5
        assert dict(spec.machine.cost) == {"detector_delay": 99.0}

    def test_fault_appends_and_faults_replaces(self):
        spec = (
            Experiment.workload(WORKLOAD).faults("0.3:1").fault(0.7, 0).build()
        )
        assert spec.faults.entries == ((0.3, 1), (0.7, 0))
        spec = Experiment.workload(WORKLOAD).fault(0.3, 1).faults("0.9:0").build()
        assert spec.faults.entries == ((0.9, 0),)

    def test_mixing_fault_modes_rejected(self):
        with pytest.raises(SpecError, match="mix"):
            Experiment.workload(WORKLOAD).fault(0.3, 1).fault(600.0, 2, mode="time")

    def test_fault_defaults_to_frac_even_after_time_schedule(self):
        # .fault() is documented as fraction-of-baseline by default; it
        # must not silently inherit time mode from an earlier .faults()
        with pytest.raises(SpecError, match="mix"):
            Experiment.workload(WORKLOAD).faults("600:2", mode="time").fault(0.9, 1)

    def test_workload_required(self):
        with pytest.raises(SpecError, match="workload"):
            Experiment().policy("splice").build()

    def test_build_validates(self):
        with pytest.raises(SpecError, match="unknown processor"):
            Experiment.workload(WORKLOAD).processors(2).fault(0.5, 7).build()

    def test_accepts_prebuilt_specs(self):
        spec = (
            Experiment()
            .workload(RunSpec.from_params({"workload": WORKLOAD, "seed": 0}).workload)
            .faults(FaultSpec.parse("0.5:1"))
            .build()
        )
        assert spec.faults.entries == ((0.5, 1),)


class TestSessionAndHandles:
    def test_run_returns_verified_handle(self):
        handle = Experiment.workload(WORKLOAD).policy("splice").processors(2).run()
        assert handle.completed and handle.verified is True
        assert handle.record["workload"] == WORKLOAD
        assert handle.spec.policy.name == "splice"
        assert handle.makespan == handle.result.makespan
        assert "makespan" in handle.to_json()

    def test_record_matches_point_runner_exactly(self):
        params = {
            "workload": WORKLOAD,
            "policy": "splice",
            "processors": 2,
            "seed": 5,
            "fault_frac": 0.5,
            "victim": 1,
        }
        handle = Session().run(RunSpec.from_params(params))
        assert handle.record == run_machine_point(params)

    def test_session_accepts_many_forms(self):
        session = Session()
        handles = session.run_many(
            [
                WORKLOAD,  # bare workload string
                Experiment.workload(WORKLOAD).policy("splice"),  # builder
                {"workload": WORKLOAD, "seed": 0},  # params dict
            ]
        )
        assert len(handles) == 3 and session.handles == handles
        doc = handles[1].spec.to_json()
        assert session.run(doc).spec == handles[1].spec  # JSON document

    def test_session_rejects_garbage(self):
        with pytest.raises(SpecError, match="cannot resolve"):
            Session().run(42)

    def test_session_validates_every_entry_form(self):
        # the same bad spec fails identically no matter how it arrives —
        # document, params dict, or raw RunSpec (the CLI path validates too)
        bad_params = {"workload": WORKLOAD, "seed": 0, "processors": 2,
                      "fault_frac": 0.5, "victim": 9}
        with pytest.raises(SpecError, match="unknown processor"):
            Session().run(bad_params)
        spec = RunSpec.from_params(bad_params)
        with pytest.raises(SpecError, match="unknown processor"):
            Session().run(spec)
        with pytest.raises(SpecError, match="unknown processor"):
            Session().run(spec.to_json())

    def test_baseline_shared_across_session_runs(self):
        session = Session()
        a = session.run(Experiment.workload(WORKLOAD).fault(0.4, 1).seed(0))
        b = session.run(Experiment.workload(WORKLOAD).fault(0.8, 1).seed(0))
        assert a.record["fault_free"] == b.record["fault_free"]
        assert a.baseline == b.baseline

    def test_collect_trace_session(self):
        handle = Session(collect_trace=True).run(
            Experiment.workload(WORKLOAD).fault(0.5, 1).seed(2)
        )
        assert len(handle.result.trace) > 0

    def test_speedup_run(self):
        handle = Session().run(
            Experiment.workload("wide:8:20").policy("none").processors(4)
            .speedup_base(1).seed(0)
        )
        assert handle.record["speedup"] > 1.0
