"""Property-style round-trip guarantees for every spec the repo uses.

Satellite guarantee of the RunSpec refit: every registered workload
name, every policy string, every fault-model example, and every value
that appears in a scenario-registry axis or base parses into a typed
spec, re-serializes canonically, re-parses to an equal dataclass, and
survives a JSON round trip.  This is what makes the legacy string
grammars and the typed layer interchangeable everywhere.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FaultSpec,
    NemesisSpec,
    PolicySpec,
    RunSpec,
    WorkloadSpec,
)
from repro.exp import all_scenarios, expand
from repro.faults import all_models
from repro.workloads.suite import WORKLOADS


def _spec_roundtrip(cls, text, **kwargs):
    spec = cls.parse(text, **kwargs)
    rendered = spec.to_spec_str()
    assert cls.parse(rendered, **kwargs) == spec, (text, rendered)
    assert cls.from_json(spec.to_json()) == spec, text
    # canonical form is a fixed point
    assert cls.parse(rendered, **kwargs).to_spec_str() == rendered, text


SYNTHETIC_WORKLOADS = (
    "balanced:4:3:10",
    "balanced:3:2",
    "chain:24:20",
    "wide:48:120",
    "skewed:8:3:20",
    "random:404:100",
    "prog:tak:7:4:2",
    "prog:fib:11",
)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_every_registered_workload_name_roundtrips(name):
    _spec_roundtrip(WorkloadSpec, name)


@pytest.mark.parametrize("text", SYNTHETIC_WORKLOADS)
def test_synthetic_workload_specs_roundtrip(text):
    _spec_roundtrip(WorkloadSpec, text)


@pytest.mark.parametrize(
    "text",
    (
        "none",
        "rollback",
        "splice",
        "replicated",
        "replicated:1",
        "replicated:5",
        "reversible",
        "incremental",
        "incremental:persist=volatile",
        "incremental:persist=durable",
        "incremental:persist=hybrid",
    ),
)
def test_policy_specs_roundtrip(text):
    _spec_roundtrip(PolicySpec, text)


@pytest.mark.parametrize(
    "text,mode",
    [("", "frac"), ("0.5:1", "frac"), ("0.5:1+0.9:4", "frac"),
     ("0.3:1+0.6:4", "frac"), ("600:2", "time"), ("600:2+900:1", "time")],
)
def test_fault_specs_roundtrip(text, mode):
    _spec_roundtrip(FaultSpec, text, mode=mode)


@pytest.mark.parametrize("name", sorted(all_models()))
def test_every_fault_model_example_roundtrips(name):
    _spec_roundtrip(NemesisSpec, all_models()[name].example)


def test_composed_nemesis_example_roundtrips():
    _spec_roundtrip(
        NemesisSpec,
        "crash:at=0.35,node=1+chaos:drop=0.05,dup=0.1,reorder=0.2,span=40+jitter:max=25",
    )


# -- the scenario registry, exhaustively ---------------------------------------


def _axis_and_base_values(key):
    """Every value the registry uses for parameter ``key``."""
    values = set()
    for spec in all_scenarios().values():
        if spec.runner != "machine":
            continue
        if key in spec.base:
            values.add(spec.base[key])
        for axis, axis_values in spec.axes.items():
            if axis == key:
                values.update(axis_values)
    return sorted(values)


def test_registry_covers_something():
    assert _axis_and_base_values("workload") and _axis_and_base_values("policy")


@pytest.mark.parametrize("text", _axis_and_base_values("workload"))
def test_every_scenario_workload_value_roundtrips(text):
    _spec_roundtrip(WorkloadSpec, text)


@pytest.mark.parametrize("text", _axis_and_base_values("policy"))
def test_every_scenario_policy_value_roundtrips(text):
    _spec_roundtrip(PolicySpec, text)


@pytest.mark.parametrize("text", _axis_and_base_values("base_policy"))
def test_every_scenario_base_policy_value_roundtrips(text):
    _spec_roundtrip(PolicySpec, text)


@pytest.mark.parametrize("text", _axis_and_base_values("faults"))
def test_every_scenario_fault_value_roundtrips(text):
    _spec_roundtrip(FaultSpec, text, mode="frac")


@pytest.mark.parametrize("text", _axis_and_base_values("nemesis"))
def test_every_scenario_nemesis_value_roundtrips(text):
    _spec_roundtrip(NemesisSpec, text)


@pytest.mark.parametrize(
    "name",
    sorted(s.name for s in all_scenarios().values() if s.runner == "machine"),
)
def test_every_machine_point_runspec_roundtrips_and_is_canonical(name):
    spec = all_scenarios()[name]
    for point in expand(spec):
        runspec = RunSpec.from_params(point.params)
        assert RunSpec.from_json(runspec.to_json()) == runspec
        # canonicalization must not rewrite the registry's strings — this
        # is what makes the sweep output byte-identical pre/post refit
        assert runspec.workload.to_spec_str() == point.params["workload"]
        assert runspec.policy.to_spec_str() == point.params.get("policy", "rollback")
        if point.params.get("nemesis"):
            assert runspec.nemesis.to_spec_str() == point.params["nemesis"]
