"""Tests for the typed spec dataclasses and their grammars."""

from __future__ import annotations

import pytest

from repro.api import (
    RUNSPEC_SCHEMA,
    FaultSpec,
    MachineSpec,
    NemesisSpec,
    PolicySpec,
    RunSpec,
    SpecError,
    WorkloadSpec,
)
from repro.errors import ReproError


class TestWorkloadSpec:
    def test_named_suite_entry(self):
        spec = WorkloadSpec.parse("fib-10")
        assert spec.kind == "named" and spec.name == "fib-10"
        assert spec.to_spec_str() == "fib-10"
        factory, size = spec.build()
        assert size is None and factory().name == "fib-10"

    def test_tree_specs(self):
        spec = WorkloadSpec.parse("balanced:3:2:10")
        assert spec.kind == "balanced" and spec.args == (3, 2, 10)
        _, size = spec.build()
        assert size == 15
        assert WorkloadSpec.parse("chain:7:5").build()[1] == 7

    def test_prog_spec(self):
        spec = WorkloadSpec.parse("prog:tak:7:4:2")
        assert spec.kind == "prog" and spec.name == "tak" and spec.args == (7, 4, 2)
        assert spec.to_spec_str() == "prog:tak:7:4:2"

    def test_random_spec(self):
        spec = WorkloadSpec.parse("random:404:100")
        assert spec.args == (404, 100)
        factory, size = spec.build()
        assert size == 100 and factory().name == "random:404:100"

    def test_unknown_kind_is_structured(self):
        with pytest.raises(SpecError) as exc_info:
            WorkloadSpec.parse("nope:1:2")
        err = exc_info.value
        assert err.field == "workload" and err.value == "nope:1:2"
        assert "balanced" in err.allowed and "fib-10" in err.allowed
        assert isinstance(err, ReproError) and isinstance(err, ValueError)

    def test_bad_int_arg_names_token_and_position(self):
        with pytest.raises(SpecError) as exc_info:
            WorkloadSpec.parse("balanced:3:x:10")
        err = exc_info.value
        assert err.value == "x"
        assert err.position == len("balanced:3:")

    def test_wrong_arity(self):
        with pytest.raises(SpecError, match="takes"):
            WorkloadSpec.parse("random:1:2:3")
        with pytest.raises(SpecError, match="takes"):
            WorkloadSpec.parse("balanced:")

    def test_unknown_program(self):
        with pytest.raises(SpecError) as exc_info:
            WorkloadSpec.parse("prog:nosuch:3")
        assert "fib" in exc_info.value.allowed

    def test_json_roundtrip(self):
        for text in ("fib-10", "balanced:4:2:30", "prog:tak:7:4:2"):
            spec = WorkloadSpec.parse(text)
            assert WorkloadSpec.from_json(spec.to_json()) == spec

    def test_from_json_validates_through_the_grammar(self):
        with pytest.raises(SpecError):
            WorkloadSpec.from_json({"kind": "named", "name": "nope"})
        with pytest.raises(SpecError):
            WorkloadSpec.from_json({"kind": "bogus", "args": [1]})
        with pytest.raises(SpecError, match="malformed"):
            WorkloadSpec.from_json({"name": "fib-10"})  # missing kind


class TestPolicySpec:
    def test_simple_policies(self):
        for name in ("none", "rollback", "splice"):
            spec = PolicySpec.parse(name)
            assert spec == PolicySpec(name) and spec.to_spec_str() == name
            assert spec.build().name == name

    def test_replicated_with_and_without_k(self):
        assert PolicySpec.parse("replicated:5").build().k == 5
        # bare `replicated` defers k to the machine's replication factor
        assert PolicySpec.parse("replicated").build()._k is None
        assert PolicySpec.parse("replicated").to_spec_str() == "replicated"
        assert PolicySpec.parse("replicated:3").to_spec_str() == "replicated:3"

    def test_bare_replicated_follows_machine_replication(self):
        from repro.api import Experiment

        def accepted(k):
            handle = (
                Experiment.workload("balanced:2:2:5")
                .policy("replicated")
                .replication(k)
                .processors(5)
                .run()
            )
            assert handle.completed
            return handle.record["metrics"]["tasks_accepted"]

        # replicated work scales with the *machine's* replication factor,
        # so .replication(k) governs the policy as documented
        assert accepted(5) > accepted(3) > accepted(1)

    def test_unknown_policy_lists_allowed(self):
        with pytest.raises(SpecError) as exc_info:
            PolicySpec.parse("splicy")
        assert "rollback" in exc_info.value.allowed

    def test_simple_policy_rejects_parameter(self):
        with pytest.raises(SpecError, match="takes no parameter"):
            PolicySpec.parse("rollback:3")

    def test_bad_k(self):
        with pytest.raises(SpecError, match="expected int"):
            PolicySpec.parse("replicated:many")

    def test_reversible_is_a_simple_policy(self):
        spec = PolicySpec.parse("reversible")
        assert spec == PolicySpec("reversible")
        assert spec.to_spec_str() == "reversible"
        assert spec.build().name == "reversible"
        with pytest.raises(SpecError, match="takes no parameter"):
            PolicySpec.parse("reversible:3")

    def test_incremental_with_and_without_persist(self):
        bare = PolicySpec.parse("incremental")
        assert bare.persist is None and bare.to_spec_str() == "incremental"
        # bare `incremental` defers to the policy default, volatile
        assert bare.build().persist == "volatile"
        for mode in ("volatile", "durable", "hybrid"):
            text = f"incremental:persist={mode}"
            spec = PolicySpec.parse(text)
            assert spec.persist == mode and spec.to_spec_str() == text
            assert spec.build().persist == mode

    def test_incremental_unknown_parameter_diagnostics(self):
        with pytest.raises(SpecError) as exc_info:
            PolicySpec.parse("incremental:durability=on")
        err = exc_info.value
        assert err.field == "policy.incremental"
        assert err.value == "durability"
        assert err.allowed == ("persist",)
        assert err.position == len("incremental:")

    def test_incremental_bad_persist_value_diagnostics(self):
        with pytest.raises(SpecError) as exc_info:
            PolicySpec.parse("incremental:persist=bogus")
        err = exc_info.value
        assert err.field == "policy.persist"
        assert err.value == "bogus"
        assert err.allowed == ("volatile", "durable", "hybrid")
        assert err.position == len("incremental:persist=")

    def test_unknown_policy_lists_parameterized_forms(self):
        with pytest.raises(SpecError) as exc_info:
            PolicySpec.parse("healing")
        allowed = exc_info.value.allowed
        assert "reversible" in allowed
        assert "incremental[:persist=MODE]" in allowed

    def test_json_roundtrip(self):
        for text in ("none", "splice", "replicated", "replicated:5",
                     "reversible", "incremental", "incremental:persist=hybrid"):
            spec = PolicySpec.parse(text)
            assert PolicySpec.from_json(spec.to_json()) == spec

    def test_persist_json_key_only_when_set(self):
        # pre-existing documents (and the cache keys derived from them)
        # must stay byte-identical, so `persist` is conditional
        assert "persist" not in PolicySpec.parse("rollback").to_json()
        assert "persist" not in PolicySpec.parse("incremental").to_json()
        doc = PolicySpec.parse("incremental:persist=durable").to_json()
        assert doc["persist"] == "durable"


class TestFaultSpec:
    def test_parse_frac_schedule(self):
        spec = FaultSpec.parse("0.5:1+0.9:4")
        assert spec.entries == ((0.5, 1), (0.9, 4)) and spec.mode == "frac"
        assert spec.to_spec_str() == "0.5:1+0.9:4"

    def test_parse_time_schedule(self):
        spec = FaultSpec.parse("600:2", mode="time")
        assert spec.entries == ((600.0, 2),) and spec.mode == "time"
        # non-default modes are self-describing in the string form, so a
        # bare re-parse cannot silently demote absolute times to fractions
        assert spec.to_spec_str() == "time:600:2"
        assert FaultSpec.parse(spec.to_spec_str()) == spec

    def test_mode_prefix_overrides_parse_default(self):
        spec = FaultSpec.parse("time:600:2")
        assert spec.mode == "time" and spec.entries == ((600.0, 2),)
        assert FaultSpec.parse("frac:0.5:1", mode="time").mode == "frac"

    def test_empty_schedule_normalizes_mode(self):
        assert FaultSpec.parse("", mode="time") == FaultSpec.parse("")
        assert FaultSpec.parse("", mode="time").to_spec_str() == ""

    def test_empty_is_falsy(self):
        assert not FaultSpec.parse("")
        assert FaultSpec.parse("0.5:1")

    def test_malformed_items(self):
        with pytest.raises(SpecError, match="must be"):
            FaultSpec.parse("nope")
        with pytest.raises(SpecError, match="must be"):
            FaultSpec.parse("600", mode="time")
        with pytest.raises(SpecError, match="expected float"):
            FaultSpec.parse("x:1")
        with pytest.raises(SpecError, match="expected int"):
            FaultSpec.parse("0.5:n")

    def test_error_position_points_at_bad_item(self):
        with pytest.raises(SpecError) as exc_info:
            FaultSpec.parse("0.5:1+bad")
        assert exc_info.value.position == len("0.5:1+")

    def test_unknown_mode(self):
        with pytest.raises(SpecError, match="unknown fault mode"):
            FaultSpec.parse("0.5:1", mode="relative")

    def test_exponent_floats_round_trip(self):
        # repr(1e16) is '1e+16'; the '+' must not collide with the
        # entry separator
        spec = FaultSpec(((1e16, 1),), "time")
        assert FaultSpec.parse(spec.to_spec_str()) == spec

    def test_schedule_frac_scales_and_clamps(self):
        schedule = FaultSpec.parse("0.5:1+0.001:2").schedule(100.0)
        assert sorted((f.time, f.node) for f in schedule) == [(1.0, 2), (50.0, 1)]

    def test_schedule_time_is_absolute(self):
        schedule = FaultSpec.parse("600:2", mode="time").schedule()
        assert [(f.time, f.node) for f in schedule] == [(600.0, 2)]

    def test_schedule_frac_requires_baseline(self):
        with pytest.raises(SpecError, match="baseline"):
            FaultSpec.parse("0.5:1").schedule()

    def test_json_roundtrip(self):
        for text, mode in (("0.5:1+0.9:4", "frac"), ("600:2+900:1", "time"), ("", "frac")):
            spec = FaultSpec.parse(text, mode=mode)
            assert FaultSpec.from_json(spec.to_json()) == spec


class TestNemesisSpec:
    def test_parse_composition_preserves_clause_order(self):
        spec = NemesisSpec.parse("crash:at=0.4,node=1+jitter:max=25")
        assert [c.model for c in spec.clauses] == ["crash", "jitter"]

    def test_canonical_param_order_is_registry_order(self):
        # given out of declaration order, re-serialized canonically
        spec = NemesisSpec.parse("crash:node=1,at=0.4")
        assert spec.to_spec_str() == "crash:at=0.4,node=1"
        assert NemesisSpec.parse(spec.to_spec_str()) == spec

    def test_integral_floats_round_trip_bytewise(self):
        text = "chaos:drop=0.05,dup=0.1,reorder=0.2,span=40"
        assert NemesisSpec.parse(text).to_spec_str() == text

    def test_node_groups(self):
        spec = NemesisSpec.parse("partition:start=0.3,dur=0.25,group=0-1-3")
        assert dict(spec.clauses[0].params)["group"] == (0, 1, 3)
        assert spec.to_spec_str() == "partition:start=0.3,dur=0.25,group=0-1-3"

    def test_build_scales_fraction_params(self):
        spec = NemesisSpec.parse("crash:at=0.5,node=1")
        crash = list(spec.build(200.0))[0]
        assert [(f.time, f.node) for f in crash.schedule] == [(100.0, 1)]

    def test_empty(self):
        assert not NemesisSpec.parse("")
        assert not NemesisSpec.parse("  ")
        assert len(NemesisSpec.parse("").build(100.0)) == 0

    def test_unknown_model_is_structured(self):
        with pytest.raises(SpecError) as exc_info:
            NemesisSpec.parse("crash:at=0.4,node=1+nosuch:x=1")
        err = exc_info.value
        assert err.value == "nosuch" and "partition" in err.allowed
        assert err.position == len("crash:at=0.4,node=1+")

    def test_unknown_param_missing_param_bad_value(self):
        with pytest.raises(SpecError, match="unknown parameter"):
            NemesisSpec.parse("crash:at=0.4,node=1,bogus=3")
        with pytest.raises(SpecError, match="missing parameters"):
            NemesisSpec.parse("crash:at=0.4")
        with pytest.raises(SpecError, match="bad value"):
            NemesisSpec.parse("crash:at=half,node=1")

    def test_json_roundtrip(self):
        for text in (
            "",
            "crash:at=0.35,node=1+chaos:drop=0.05,dup=0.1,reorder=0.2,span=40+jitter:max=25",
            "partition:start=0.3,dur=0.25,group=0-1",
        ):
            spec = NemesisSpec.parse(text)
            assert NemesisSpec.from_json(spec.to_json()) == spec


class TestMachineSpec:
    def test_defaults(self):
        spec = MachineSpec.parse("")
        assert spec == MachineSpec()
        assert spec.to_spec_str() == ""

    def test_parse_fields_and_cost(self):
        spec = MachineSpec.parse(
            "processors=8,topology=ring,cost.detector_delay=400"
        )
        assert spec.processors == 8 and spec.topology == "ring"
        assert dict(spec.cost) == {"detector_delay": 400.0}
        assert MachineSpec.parse(spec.to_spec_str()) == spec

    def test_unknown_field_topology_scheduler_cost(self):
        with pytest.raises(SpecError, match="unknown machine field"):
            MachineSpec.parse("cpus=8")
        with pytest.raises(SpecError) as exc_info:
            MachineSpec.parse("topology=tube")
        assert "hypercube" in exc_info.value.allowed
        with pytest.raises(SpecError, match="unknown scheduler"):
            MachineSpec.parse("scheduler=fifo")
        with pytest.raises(SpecError, match="unknown cost field"):
            MachineSpec.parse("cost.latency=3")

    def test_to_config(self):
        config = MachineSpec.parse("processors=6,cost.hop_latency=9").to_config(seed=4)
        assert config.n_processors == 6 and config.seed == 4
        assert config.cost.hop_latency == 9.0

    def test_from_params_rejects_unknown_cost(self):
        with pytest.raises(SpecError, match="unknown cost fields"):
            MachineSpec.from_params({"cost": {"latency": 1.0}})

    def test_from_params_coerces_and_guards_cost_values(self):
        spec = MachineSpec.from_params({"cost": {"detector_delay": "400"}})
        assert dict(spec.cost) == {"detector_delay": 400.0}
        with pytest.raises(SpecError, match="expected float"):
            MachineSpec.from_params({"cost": {"detector_delay": "abc"}})
        with pytest.raises(SpecError, match="mapping"):
            MachineSpec.from_params({"cost": 5})

    def test_json_roundtrip(self):
        spec = MachineSpec.parse("processors=8,scheduler=static,cost.ack_timeout=100")
        assert MachineSpec.from_json(spec.to_json()) == spec


class TestRunSpec:
    PARAMS = {
        "workload": "balanced:3:2:10",
        "policy": "splice",
        "processors": 4,
        "seed": 11,
        "faults": "0.5:1",
        "nemesis": "jitter:max=25",
        "base_policy": "rollback",
    }

    def test_from_params(self):
        spec = RunSpec.from_params(self.PARAMS)
        assert spec.workload.to_spec_str() == "balanced:3:2:10"
        assert spec.policy.name == "splice"
        assert spec.seed == 11
        assert spec.faults.entries == ((0.5, 1),)
        assert spec.base_policy == PolicySpec("rollback")

    def test_from_params_folds_fault_frac_and_victim(self):
        spec = RunSpec.from_params(
            {"workload": "balanced:2:2:5", "seed": 0, "faults": "0.3:2",
             "fault_frac": 0.7, "victim": 1}
        )
        assert spec.faults.entries == ((0.3, 2), (0.7, 1))

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown run parameter"):
            RunSpec.from_params({"workload": "fib-10", "seed": 0, "polcy": "splice"})

    def test_from_params_honors_time_mode_fault_prefix(self):
        # a self-describing "time:" schedule must not be relabeled as
        # fractions (which would misplace faults by a factor of the
        # baseline makespan)
        spec = RunSpec.from_params(
            {"workload": "balanced:2:2:5", "seed": 0, "faults": "time:600:2"}
        )
        assert spec.faults.mode == "time"
        assert spec.faults.entries == ((600.0, 2),)

    def test_from_params_rejects_time_faults_mixed_with_fault_frac(self):
        with pytest.raises(SpecError, match="time-mode"):
            RunSpec.from_params(
                {"workload": "balanced:2:2:5", "seed": 0,
                 "faults": "time:600:2", "fault_frac": 0.5}
            )

    def test_from_params_requires_workload_and_seed(self):
        with pytest.raises(SpecError, match="workload"):
            RunSpec.from_params({"seed": 0})
        with pytest.raises(SpecError, match="seed"):
            RunSpec.from_params({"workload": "fib-10"})

    def test_json_roundtrip(self):
        spec = RunSpec.from_params(self.PARAMS)
        doc = spec.to_json()
        assert doc["schema"] == RUNSPEC_SCHEMA
        assert RunSpec.from_json(doc) == spec

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(SpecError, match="schema"):
            RunSpec.from_json({"schema": "repro-runspec/99", "workload": "fib-10"})

    def test_from_json_rejects_mode_prefix_disagreement(self):
        base = RunSpec.from_params({"workload": "fib-10", "seed": 0}).to_json()
        with pytest.raises(SpecError, match="disagrees"):
            RunSpec.from_json(
                {**base, "faults": {"mode": "frac", "schedule": "time:600:2"}}
            )
        # agreement (prefix or bare) loads fine
        for schedule in ("time:600:2", "600:2"):
            spec = RunSpec.from_json(
                {**base, "faults": {"mode": "time", "schedule": schedule}}
            )
            assert spec.faults.mode == "time"

    def test_from_json_rejects_typod_keys(self):
        # a hand-edited document must not silently run a different
        # experiment than written
        base = RunSpec.from_params({"workload": "fib-10", "seed": 0}).to_json()
        with pytest.raises(SpecError, match="nemessis"):
            RunSpec.from_json({**base, "nemessis": "crash:at=0.5,node=1"})
        with pytest.raises(SpecError, match="procesors"):
            RunSpec.from_json({**base, "machine": {"procesors": 64}})

    def test_from_json_malformed_documents_raise_spec_errors(self):
        # every malformed shape surfaces as a structured SpecError, never
        # a raw KeyError/AttributeError/TypeError traceback
        for payload in (
            {"schema": RUNSPEC_SCHEMA},  # missing workload
            [],  # not an object
            {"schema": RUNSPEC_SCHEMA, "workload": "fib-10", "faults": "0.5:1"},
            {"schema": RUNSPEC_SCHEMA, "workload": "fib-10", "seed": "eleven"},
        ):
            with pytest.raises(SpecError):
                RunSpec.from_json(payload)

    def test_leaf_from_json_malformed_documents_raise_spec_errors(self):
        with pytest.raises(SpecError, match="unknown fault model"):
            NemesisSpec.from_json({"clauses": [{"model": "nosuch", "params": {}}]})
        with pytest.raises(SpecError, match="bad value"):
            NemesisSpec.from_json(
                {"clauses": [{"model": "crash", "params": {"at": "x", "node": 1}}]}
            )
        with pytest.raises(SpecError, match="malformed"):
            NemesisSpec.from_json({"clauses": ["crash"]})
        with pytest.raises(SpecError, match="malformed"):
            FaultSpec.from_json({"entries": [["x", 1]]})

    def test_canonical_json_is_byte_stable(self):
        spec = RunSpec.from_params(self.PARAMS)
        assert spec.canonical_json() == RunSpec.from_json(spec.to_json()).canonical_json()

    def test_validate_catches_bad_fault_node(self):
        spec = RunSpec.from_params(
            {"workload": "fib-10", "seed": 0, "processors": 4, "fault_frac": 0.5,
             "victim": 9}
        )
        with pytest.raises(SpecError, match="unknown processor"):
            spec.validate()

    def test_validate_catches_config_cross_field(self):
        spec = RunSpec.from_params(
            {"workload": "fib-10", "seed": 0, "processors": 6, "topology": "hypercube"}
        )
        with pytest.raises(SpecError, match="power-of-two"):
            spec.validate()

    def test_validate_catches_nemesis_model_errors(self):
        spec = RunSpec.from_params(
            {"workload": "fib-10", "seed": 0, "processors": 4,
             "nemesis": "partition:start=0.3,dur=0.2,group=0-9"}
        )
        with pytest.raises(SpecError):
            spec.validate()
