"""Docs consistency checks (run in CI as the docs gate).

Every scenario name referenced in README/docs must exist in the
registry, and every registered scenario must be documented — so the
README's "reproducing the paper" table and ``repro exp list`` can never
drift apart silently.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.exp import all_scenarios

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_FILES = ["README.md", "docs/ARCHITECTURE.md", "docs/SCENARIOS.md"]

EXP_REF = re.compile(r"exp (?:run|show) ([a-z0-9][a-z0-9-]*)")


def read_docs() -> dict:
    texts = {}
    for rel in DOC_FILES:
        path = os.path.join(REPO_ROOT, rel)
        with open(path, "r", encoding="utf-8") as fh:
            texts[rel] = fh.read()
    return texts


class TestDocsExist:
    @pytest.mark.parametrize("rel", DOC_FILES)
    def test_doc_file_present(self, rel):
        assert os.path.exists(os.path.join(REPO_ROOT, rel)), rel

    def test_readme_names_tier1_command(self):
        readme = read_docs()["README.md"]
        assert "python -m pytest -x -q" in readme
        assert "PYTHONPATH=src" in readme

    def test_readme_points_at_quickstart(self):
        readme = read_docs()["README.md"]
        assert "examples/quickstart.py" in readme
        assert os.path.exists(os.path.join(REPO_ROOT, "examples", "quickstart.py"))


class TestScenarioReferences:
    def test_every_referenced_scenario_is_registered(self):
        registered = set(all_scenarios())
        for rel, text in read_docs().items():
            for name in EXP_REF.findall(text):
                assert name in registered, f"{rel} references unknown scenario {name!r}"

    def test_docs_reference_at_least_the_core_scenarios(self):
        refs = set()
        for text in read_docs().values():
            refs.update(EXP_REF.findall(text))
        assert {"rollback-vs-splice", "overhead-faultfree", "smoke"} <= refs

    def test_every_registered_scenario_is_documented(self):
        corpus = "\n".join(read_docs().values())
        for name in all_scenarios():
            assert name in corpus, f"scenario {name!r} missing from README/docs"
