"""Docs consistency checks (run in CI as the docs gate).

Every scenario name referenced in README/docs must exist in the
scenario registry (and every registered scenario must be documented),
every benchmark name referenced in README/docs must exist in the perf
registry (and every registered benchmark must be documented in
PERFORMANCE.md), and the fault-model registry must agree with
FAULTS.md and the ``repro faults`` CLI — so the docs, ``repro exp
list``, ``repro perf list``, and ``repro faults list`` can never drift
apart silently.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.exp import all_scenarios
from repro.faults import all_models
from repro.perf import all_benches

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOC_FILES = [
    "README.md",
    "docs/API.md",
    "docs/ARCHITECTURE.md",
    "docs/SCENARIOS.md",
    "docs/PERFORMANCE.md",
    "docs/FAULTS.md",
    "docs/LEDGER.md",
    "docs/REPORTS.md",
    "docs/CHECK.md",
    "docs/LOAD.md",
    "docs/POLICIES.md",
]

EXP_REF = re.compile(r"exp (?:run|show) ([a-z0-9][a-z0-9-]*)")
#: `repro exp` verbs referenced in docs (the verb group is API).
EXP_CLI_REF = re.compile(r"exp (list|show|run|runs|resume)\b")
#: `repro report` verbs referenced in docs (the verb group is API).
REPORT_CLI_REF = re.compile(r"report (list|run|compare)")
#: Scenario names fed to the report verbs must resolve too.
REPORT_SCENARIO_REF = re.compile(r"report (?:run|compare) ([a-z0-9][a-z0-9-]*)")
#: Benchmark references look like `macro-faultfree` / `micro-event-queue`
#: (the registry enforces the kind prefix, so the pattern is unambiguous).
BENCH_REF = re.compile(r"`((?:macro|micro)-[a-z0-9-]+)`")
PERF_CLI_REF = re.compile(r"perf (list|run|compare)")
FAULTS_CLI_REF = re.compile(r"faults (list|describe)")
CHECK_CLI_REF = re.compile(r"check (list|run|search|corpus)")

#: The fault-model registry names are API: scenario specs, sweep caches,
#: and docs all reference them as strings, so renames are breaking
#: changes and must be made deliberately (here and in docs/FAULTS.md).
FAULT_MODEL_NAMES = {"crash", "cascade", "partition", "chaos", "grayfail", "jitter"}

#: The public surface of repro.api is a contract: docs, the README
#: quickstart, and downstream code import these names.  Removals or
#: renames are breaking changes and must be made deliberately (here,
#: in docs/API.md, and in the README).
API_EXPORTS = {
    "RUNSPEC_SCHEMA",
    "ArrivalSpec",
    "Experiment",
    "FaultSpec",
    "MachineSpec",
    "NemesisClause",
    "NemesisSpec",
    "PolicySpec",
    "RunHandle",
    "RunSpec",
    "Session",
    "SpecError",
    "WorkloadSpec",
    "execute",
    "replicate",
    "replicate_seeds",
}

#: The public surface of repro.report, pinned like repro.api: docs and
#: CI reference these names, so removals/renames are breaking changes
#: and must be made deliberately (here and in docs/REPORTS.md).
REPORT_EXPORTS = {
    "DEFAULT_OUT_DIR",
    "REPORT_SCHEMA",
    "CellDelta",
    "CellSummary",
    "Comparison",
    "MetricDelta",
    "MetricSummary",
    "ReportResult",
    "SweepAggregate",
    "aggregate_sweep",
    "compare_aggregates",
    "compare_payload",
    "markdown_compare",
    "markdown_report",
    "report_payload",
    "run_compare",
    "run_report",
    "split_compare",
}


#: The public surface of repro.exp, pinned like repro.api: the CLI,
#: docs/SCENARIOS.md, docs/LEDGER.md, and the run ledgers reference
#: these names, so removals/renames are breaking changes and must be
#: made deliberately (here and in those docs).
EXP_EXPORTS = {
    "DEFAULT_LEDGER_DIR",
    "LEDGER_SCHEMA",
    "LedgerState",
    "LedgerWarning",
    "LedgerWriter",
    "Point",
    "ScenarioSpec",
    "SweepResult",
    "all_scenarios",
    "expand",
    "expanded_runspecs",
    "get_scenario",
    "ledger_path",
    "list_runs",
    "point_runspec",
    "point_seed",
    "register",
    "replay_ledger",
    "replicate_seed",
    "resume_run",
    "run_scenario",
    "sweep_table",
    "with_replications",
}

#: The public surface of repro.check, pinned like repro.api: the CLI,
#: docs/CHECK.md, and the search ledgers reference these names, so
#: removals/renames are breaking changes and must be made deliberately
#: (here and in docs/CHECK.md).
CHECK_EXPORTS = {
    "CHECK_SCHEMA",
    "CORPUS_SCHEMA",
    "DEFAULT_LEDGER_DIR",
    "MODES",
    "ORACLE_NAMES",
    "STATUSES",
    "STRATEGIES",
    "CheckConfig",
    "CheckContext",
    "CheckReport",
    "CorpusReport",
    "CoverageSignature",
    "Evaluator",
    "OracleInfo",
    "SearchResult",
    "Verdict",
    "all_oracles",
    "build_context",
    "check_spec",
    "corpus_doc",
    "evaluate",
    "evaluate_context",
    "ledger_path",
    "load_corpus",
    "oracle",
    "recovery_stats",
    "run_corpus",
    "search",
    "select_oracles",
    "shrink",
    "signature_from_context",
    "write_corpus",
}

#: The public surface of repro.load, pinned like repro.api: CLI flags,
#: scenario axes, and docs/LOAD.md reference these names, so
#: removals/renames are breaking changes and must be made deliberately
#: (here and in docs/LOAD.md).
LOAD_EXPORTS = {
    "ARRIVAL_PROCESSES",
    "Arrival",
    "ArrivalSpec",
    "LoadGenerator",
    "LoadState",
    "LoadSummary",
    "OVERFLOW_POLICIES",
    "OpenLoopWorkload",
    "PROCESSES",
    "sample_arrivals",
}

#: Arrival-process and overflow-policy names are API: spec strings in
#: sweep caches, ledgers, and CLI flags match on them, so renames are
#: breaking changes (update here and in docs/LOAD.md deliberately).
ARRIVAL_PROCESS_NAMES = ("poisson", "bursty", "diurnal")
OVERFLOW_POLICY_NAMES = ("drop", "tail", "backpressure")

#: The policy-spec names are API: RunSpec documents, sweep cache keys,
#: CLI flags, and docs all match on these strings, so renames are
#: breaking changes and must be made deliberately (here,
#: docs/POLICIES.md, and docs/API.md).
SIMPLE_POLICY_NAMES = ("none", "rollback", "splice", "reversible")
PERSIST_MODE_NAMES = ("volatile", "durable", "hybrid")

#: The public surface of repro.policies, pinned like repro.api: the
#: PolicySpec builder and docs/POLICIES.md reference these names.
POLICY_EXPORTS = {"IncrementalRecovery", "PERSIST_MODES", "ReversibleRecovery"}

#: The oracle catalog names are API: ledgers, docs, and the CLI pin
#: them as strings, so renames are breaking changes (update here and
#: in docs/CHECK.md deliberately).
ORACLE_NAMES = (
    "result-agreement",
    "no-orphan-commit",
    "checkpoint-coverage",
    "causal-delivery",
    "bounded-recovery",
    "weak-recovery",
)


def read_docs() -> dict:
    texts = {}
    for rel in DOC_FILES:
        path = os.path.join(REPO_ROOT, rel)
        with open(path, "r", encoding="utf-8") as fh:
            texts[rel] = fh.read()
    return texts


class TestDocsExist:
    @pytest.mark.parametrize("rel", DOC_FILES)
    def test_doc_file_present(self, rel):
        assert os.path.exists(os.path.join(REPO_ROOT, rel)), rel

    def test_readme_names_tier1_command(self):
        readme = read_docs()["README.md"]
        assert "python -m pytest -x -q" in readme
        assert "PYTHONPATH=src" in readme

    def test_readme_points_at_quickstart(self):
        readme = read_docs()["README.md"]
        assert "examples/quickstart.py" in readme
        assert os.path.exists(os.path.join(REPO_ROOT, "examples", "quickstart.py"))


class TestScenarioReferences:
    def test_every_referenced_scenario_is_registered(self):
        registered = set(all_scenarios())
        for rel, text in read_docs().items():
            for name in EXP_REF.findall(text):
                assert name in registered, f"{rel} references unknown scenario {name!r}"

    def test_docs_reference_at_least_the_core_scenarios(self):
        refs = set()
        for text in read_docs().values():
            refs.update(EXP_REF.findall(text))
        assert {"rollback-vs-splice", "overhead-faultfree", "smoke"} <= refs

    def test_every_registered_scenario_is_documented(self):
        corpus = "\n".join(read_docs().values())
        for name in all_scenarios():
            assert name in corpus, f"scenario {name!r} missing from README/docs"


class TestPerfReferences:
    def test_every_referenced_benchmark_is_registered(self):
        # Deliberately strict: any backticked `macro-*`/`micro-*` span in
        # the docs must be a registered benchmark name.  Prose that merely
        # looks like one (e.g. "`micro-benchmarks`") fails here on purpose;
        # rewrite such prose without backticks.
        registered = set(all_benches())
        for rel, text in read_docs().items():
            for name in BENCH_REF.findall(text):
                assert name in registered, f"{rel} references unknown benchmark {name!r}"

    def test_every_registered_benchmark_is_documented_in_performance_md(self):
        perf_doc = read_docs()["docs/PERFORMANCE.md"]
        for name in all_benches():
            assert name in perf_doc, f"benchmark {name!r} missing from PERFORMANCE.md"

    def test_docs_name_the_perf_cli_verbs(self):
        readme = read_docs()["README.md"]
        perf_doc = read_docs()["docs/PERFORMANCE.md"]
        for text in (readme, perf_doc):
            verbs = set(PERF_CLI_REF.findall(text))
            assert {"list", "run", "compare"} <= verbs, (
                "README and PERFORMANCE.md must document `perf list`, "
                "`perf run`, and `perf compare`"
            )

    def test_readme_points_at_the_committed_baseline(self):
        readme = read_docs()["README.md"]
        assert "BENCH_core.json" in readme
        assert "docs/PERFORMANCE.md" in readme


class TestFaultModelReferences:
    def test_registry_names_are_pinned(self):
        assert set(all_models()) == FAULT_MODEL_NAMES, (
            "fault-model registry names changed; update FAULT_MODEL_NAMES, "
            "docs/FAULTS.md, and any scenario specs deliberately"
        )

    def test_every_model_documented_in_faults_md(self):
        faults_doc = read_docs()["docs/FAULTS.md"]
        for name in all_models():
            assert f"`{name}`" in faults_doc, (
                f"fault model {name!r} missing from docs/FAULTS.md"
            )

    def test_docs_name_the_faults_cli_verbs(self):
        readme = read_docs()["README.md"]
        faults_doc = read_docs()["docs/FAULTS.md"]
        for text in (readme, faults_doc):
            verbs = set(FAULTS_CLI_REF.findall(text))
            assert {"list", "describe"} <= verbs, (
                "README and FAULTS.md must document `faults list` and "
                "`faults describe`"
            )

    def test_chaos_scenarios_registered_and_documented(self):
        registered = set(all_scenarios())
        corpus = "\n".join(read_docs().values())
        for name in ("chaos-partition", "chaos-grayfail", "chaos-storm"):
            assert name in registered
            assert name in corpus, f"chaos scenario {name!r} missing from docs"

    def test_faults_md_shows_the_spec_grammar(self):
        faults_doc = read_docs()["docs/FAULTS.md"]
        # the composition operator and a worked spec must be shown
        assert "+" in faults_doc and "crash:at=" in faults_doc


class TestApiReferences:
    def test_api_exports_are_pinned(self):
        import repro.api

        assert set(repro.api.__all__) == API_EXPORTS, (
            "repro.api exports changed; update API_EXPORTS, docs/API.md, "
            "and the README quickstart deliberately"
        )
        for name in API_EXPORTS:
            assert hasattr(repro.api, name), name

    def test_quickstart_import_line_works(self):
        # the documented quickstart import, verbatim
        from repro.api import Experiment, RunSpec, Session  # noqa: F401

    def test_package_root_reexports_the_api(self):
        import repro

        for name in ("Experiment", "Session", "RunSpec", "RunHandle", "SpecError"):
            assert name in repro.__all__ and hasattr(repro, name)

    def test_readme_quickstart_is_on_repro_api(self):
        readme = read_docs()["README.md"]
        assert "from repro.api import Experiment, Session, RunSpec" in readme
        assert "docs/API.md" in readme

    def test_docs_name_the_new_run_flags(self):
        readme = read_docs()["README.md"]
        api_doc = read_docs()["docs/API.md"]
        for text in (readme, api_doc):
            assert "--dry-run" in text
            assert "--spec-json" in text
        assert "--nemesis" in readme

    def test_docs_name_exp_show_json(self):
        corpus = read_docs()
        assert re.search(r"exp show [a-z0-9-]+ --json", corpus["README.md"])
        assert "--json" in corpus["docs/API.md"]

    def test_api_doc_shows_all_spec_grammars(self):
        api_doc = read_docs()["docs/API.md"]
        for cls in ("WorkloadSpec", "PolicySpec", "FaultSpec", "NemesisSpec",
                    "MachineSpec", "RunSpec"):
            assert cls in api_doc, f"{cls} missing from docs/API.md"
        from repro.api import RUNSPEC_SCHEMA

        assert RUNSPEC_SCHEMA in api_doc

    def test_api_doc_grammar_agrees_with_the_workload_kinds(self):
        api_doc = read_docs()["docs/API.md"]
        for kind in ("balanced", "chain", "wide", "skewed", "random", "prog"):
            assert f"{kind}:" in api_doc


class TestCheckReferences:
    def test_check_exports_are_pinned(self):
        import repro.check

        assert set(repro.check.__all__) == CHECK_EXPORTS, (
            "repro.check exports changed; update CHECK_EXPORTS and "
            "docs/CHECK.md deliberately"
        )
        for name in CHECK_EXPORTS:
            assert hasattr(repro.check, name), name

    def test_oracle_names_are_pinned(self):
        from repro.check import ORACLE_NAMES as live

        assert live == ORACLE_NAMES, (
            "oracle catalog changed; update ORACLE_NAMES and docs/CHECK.md "
            "deliberately — ledger consumers match on these strings"
        )

    def test_every_oracle_documented_in_check_md(self):
        check_doc = read_docs()["docs/CHECK.md"]
        for name in ORACLE_NAMES:
            assert f"`{name}`" in check_doc, (
                f"oracle {name!r} missing from docs/CHECK.md"
            )

    def test_docs_name_the_check_cli_verbs(self):
        readme = read_docs()["README.md"]
        check_doc = read_docs()["docs/CHECK.md"]
        for text in (readme, check_doc):
            verbs = set(CHECK_CLI_REF.findall(text))
            assert {"list", "run", "search", "corpus"} <= verbs, (
                "README and CHECK.md must document `check list`, "
                "`check run`, `check search`, and `check corpus`"
            )

    def test_check_cli_verbs_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["check", "list"],
            ["check", "run", "fib-10"],
            ["check", "run", "--scenario", "smoke"],
            ["check", "search", "fib-10", "--seed", "3", "--expect", "clean"],
            ["check", "search", "fib-10", "--strategy", "coverage",
             "--rounds", "8", "--maximize", "--corpus-out", "c.json"],
            ["check", "corpus", "run", "tests/baselines/corpus"],
        ):
            args = parser.parse_args(argv)
            assert args.command == "check"

    def test_check_md_documents_the_ledger(self):
        check_doc = read_docs()["docs/CHECK.md"]
        from repro.check import CHECK_SCHEMA, CORPUS_SCHEMA

        assert CHECK_SCHEMA in check_doc
        assert CORPUS_SCHEMA in check_doc
        assert "results/check" in check_doc
        assert "shrink" in check_doc.lower()

    def test_check_md_documents_coverage_search(self):
        check_doc = read_docs()["docs/CHECK.md"]
        # the coverage-search section pins the feedback signal, the
        # strategy/budget/corpus flags, and the regression-gate verb
        assert "CoverageSignature" in check_doc
        for flag in ("--strategy", "--rounds", "--corpus-out", "--maximize"):
            assert flag in check_doc, flag
        assert "check corpus run" in check_doc
        assert "tests/baselines/corpus" in check_doc
        from repro.check import MODES, STRATEGIES

        assert STRATEGIES == ("random", "coverage")
        assert MODES == ("violation", "maximize")

    def test_faults_md_points_at_the_oracle_layer(self):
        faults_doc = read_docs()["docs/FAULTS.md"]
        assert "CHECK.md" in faults_doc
        assert "repro check" in faults_doc


class TestLedgerReferences:
    def test_exp_exports_are_pinned(self):
        import repro.exp

        assert set(repro.exp.__all__) == EXP_EXPORTS, (
            "repro.exp exports changed; update EXP_EXPORTS, docs/LEDGER.md, "
            "and docs/SCENARIOS.md deliberately"
        )
        for name in EXP_EXPORTS:
            assert hasattr(repro.exp, name), name

    def test_docs_name_the_exp_cli_verbs(self):
        readme = read_docs()["README.md"]
        ledger_doc = read_docs()["docs/LEDGER.md"]
        for text in (readme, ledger_doc):
            verbs = set(EXP_CLI_REF.findall(text))
            assert {"run", "runs", "resume"} <= verbs, (
                "README and LEDGER.md must document `exp run`, `exp runs`, "
                "and `exp resume`"
            )
        assert {"list", "show"} <= set(EXP_CLI_REF.findall(readme))

    def test_exp_cli_verbs_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["exp", "runs"])
        assert args.command == "exp" and args.exp_command == "runs"
        args = parser.parse_args(["exp", "resume", "smoke-b6154af7b70c"])
        assert args.exp_command == "resume"
        assert args.run_id == "smoke-b6154af7b70c"
        args = parser.parse_args(["exp", "run", "smoke", "--no-ledger"])
        assert args.no_ledger

    def test_ledger_md_documents_the_schema(self):
        ledger_doc = read_docs()["docs/LEDGER.md"]
        from repro.exp import LEDGER_SCHEMA

        assert LEDGER_SCHEMA in ledger_doc
        assert "results/ledger" in ledger_doc
        for event in (
            "run_started",
            "point_started",
            "point_finished",
            "point_failed",
            "run_finished",
        ):
            assert f"`{event}`" in ledger_doc, (
                f"ledger event {event!r} missing from docs/LEDGER.md"
            )
        assert "fsync" in ledger_doc
        assert "byte-identical" in ledger_doc

    def test_ledger_md_documents_the_test_hooks(self):
        ledger_doc = read_docs()["docs/LEDGER.md"]
        from repro.exp.ledger import CRASH_ENV, SLOW_ENV

        assert CRASH_ENV in ledger_doc and SLOW_ENV in ledger_doc

    def test_scenarios_md_points_at_the_ledger(self):
        scenarios_doc = read_docs()["docs/SCENARIOS.md"]
        assert "LEDGER.md" in scenarios_doc
        assert "results/ledger" in scenarios_doc or "ledger/" in scenarios_doc


class TestLoadReferences:
    def test_load_exports_are_pinned(self):
        import repro.load

        assert set(repro.load.__all__) == LOAD_EXPORTS, (
            "repro.load exports changed; update LOAD_EXPORTS and "
            "docs/LOAD.md deliberately"
        )
        for name in LOAD_EXPORTS:
            assert hasattr(repro.load, name), name

    def test_arrival_process_names_are_pinned(self):
        from repro.load import ARRIVAL_PROCESSES, OVERFLOW_POLICIES

        assert ARRIVAL_PROCESSES == ARRIVAL_PROCESS_NAMES, (
            "arrival-process names changed; spec strings in caches and "
            "ledgers match on these — update here and docs/LOAD.md "
            "deliberately"
        )
        assert OVERFLOW_POLICIES == OVERFLOW_POLICY_NAMES

    def test_every_process_and_policy_documented_in_load_md(self):
        load_doc = read_docs()["docs/LOAD.md"]
        for name in ARRIVAL_PROCESS_NAMES + OVERFLOW_POLICY_NAMES:
            assert f"`{name}`" in load_doc, (
                f"{name!r} missing from docs/LOAD.md"
            )

    def test_docs_name_the_load_cli_flags(self):
        readme = read_docs()["README.md"]
        load_doc = read_docs()["docs/LOAD.md"]
        assert "--arrivals" in load_doc
        assert "--horizon-time" in load_doc
        assert "--arrivals" in readme

    def test_load_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "fib-10", "--arrivals", "poisson:rate=0.01,horizon=100"]
        )
        assert args.arrivals == "poisson:rate=0.01,horizon=100"
        args = parser.parse_args(
            ["check", "run", "fib-10", "--arrivals",
             "poisson:rate=0.01,horizon=100", "--horizon-time", "900"]
        )
        assert args.horizon_time == 900.0

    def test_load_scenarios_registered_and_documented(self):
        registered = set(all_scenarios())
        corpus = "\n".join(read_docs().values())
        for name in ("load-steady", "load-saturation", "load-chaos"):
            assert name in registered
            assert name in corpus, f"load scenario {name!r} missing from docs"

    def test_load_md_shows_the_spec_grammar(self):
        load_doc = read_docs()["docs/LOAD.md"]
        assert "rate=" in load_doc and "horizon=" in load_doc
        assert "overflow=" in load_doc
        assert "ArrivalSpec" in load_doc


class TestPolicyReferences:
    def test_policies_exports_are_pinned(self):
        import repro.policies

        assert set(repro.policies.__all__) == POLICY_EXPORTS, (
            "repro.policies exports changed; update POLICY_EXPORTS and "
            "docs/POLICIES.md deliberately"
        )
        for name in POLICY_EXPORTS:
            assert hasattr(repro.policies, name), name

    def test_policy_names_are_pinned(self):
        from repro.api import PolicySpec
        from repro.policies import PERSIST_MODES

        assert PolicySpec._SIMPLE == SIMPLE_POLICY_NAMES, (
            "policy-spec names changed; RunSpec documents and sweep caches "
            "match on these strings — update here and docs/POLICIES.md "
            "deliberately"
        )
        assert PolicySpec._PERSIST_MODES == PERSIST_MODE_NAMES
        assert PERSIST_MODES == PERSIST_MODE_NAMES

    def test_cli_policy_help_names_every_policy(self):
        from repro.cli import POLICIES, POLICY_HELP

        assert set(POLICIES) == set(SIMPLE_POLICY_NAMES) | {
            "incremental",
            "replicated",
        }
        for name in POLICIES:
            assert name in POLICY_HELP, f"policy {name!r} missing from --policy help"
        assert "persist=volatile|durable|hybrid" in POLICY_HELP
        assert "replicated[:K]" in POLICY_HELP

    def test_cli_policy_flag_validates_specs(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["run", "fib-10", "--policy", "incremental:persist=durable"]
        )
        assert args.policy == "incremental:persist=durable"
        args = parser.parse_args(["check", "run", "fib-10", "--policy", "reversible"])
        assert args.policy == "reversible"
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["run", "fib-10", "--policy", "incremental:persist=bogus"]
            )

    def test_every_policy_documented_in_policies_md(self):
        policies_doc = read_docs()["docs/POLICIES.md"]
        for name in SIMPLE_POLICY_NAMES + ("incremental", "replicated"):
            assert f"`{name}" in policies_doc, (
                f"policy {name!r} missing from docs/POLICIES.md"
            )
        for mode in PERSIST_MODE_NAMES:
            assert f"`{mode}`" in policies_doc, (
                f"persist mode {mode!r} missing from docs/POLICIES.md"
            )

    def test_policy_compare_scenarios_registered_and_documented(self):
        registered = set(all_scenarios())
        corpus = "\n".join(read_docs().values())
        for name in (
            "policy-compare-faultfree",
            "policy-compare-chaos",
            "policy-compare-load",
        ):
            assert name in registered
            assert name in corpus, f"policy scenario {name!r} missing from docs"

    def test_api_doc_grammar_names_the_new_policies(self):
        api_doc = read_docs()["docs/API.md"]
        assert "incremental" in api_doc
        assert "reversible" in api_doc


class TestReadmeDocsIndex:
    def test_readme_has_a_documentation_index(self):
        readme = read_docs()["README.md"]
        assert "## Documentation" in readme, (
            "README.md must open with a docs index section"
        )
        index = readme.split("## Documentation", 1)[1].split("## ", 1)[0]
        for rel in DOC_FILES:
            if rel == "README.md":
                continue
            assert f"({rel})" in index, (
                f"README docs index must link {rel} with a one-line summary"
            )

    def test_index_precedes_the_install_section(self):
        readme = read_docs()["README.md"]
        assert readme.index("## Documentation") < readme.index("## Install")


class TestReportReferences:
    def test_report_exports_are_pinned(self):
        import repro.report

        assert set(repro.report.__all__) == REPORT_EXPORTS, (
            "repro.report exports changed; update REPORT_EXPORTS and "
            "docs/REPORTS.md deliberately"
        )
        for name in REPORT_EXPORTS:
            assert hasattr(repro.report, name), name

    def test_docs_name_the_report_cli_verbs(self):
        readme = read_docs()["README.md"]
        reports_doc = read_docs()["docs/REPORTS.md"]
        for text in (readme, reports_doc):
            verbs = set(REPORT_CLI_REF.findall(text))
            assert {"list", "run", "compare"} <= verbs, (
                "README and REPORTS.md must document `report list`, "
                "`report run`, and `report compare`"
            )

    def test_report_cli_verbs_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["report", "list"],
            ["report", "run", "smoke"],
            ["report", "compare", "smoke", "--axis", "policy"],
        ):
            args = parser.parse_args(argv)
            assert args.command == "report"

    def test_every_report_scenario_reference_is_registered(self):
        registered = set(all_scenarios())
        for rel, text in read_docs().items():
            for name in REPORT_SCENARIO_REF.findall(text):
                assert name in registered, (
                    f"{rel} feeds unknown scenario {name!r} to repro report"
                )

    def test_reports_md_states_the_determinism_contract(self):
        reports_doc = read_docs()["docs/REPORTS.md"]
        assert "--replications" in reports_doc
        assert "bootstrap" in reports_doc.lower()
        assert "results/reports" in reports_doc

    def test_scenarios_md_documents_the_results_layout(self):
        scenarios_doc = read_docs()["docs/SCENARIOS.md"]
        assert "results/" in scenarios_doc and "reports/" in scenarios_doc
        assert "<spec-key>.json" in scenarios_doc
        assert "RunSpec" in scenarios_doc  # cache key derives from RunSpec JSON

    def test_readme_has_the_ci_quickstart(self):
        readme = read_docs()["README.md"]
        assert "confidence intervals" in readme
        assert "docs/REPORTS.md" in readme


class TestCommittedBaseline:
    def test_baseline_exists_and_covers_the_registry(self):
        path = os.path.join(REPO_ROOT, "BENCH_core.json")
        assert os.path.exists(path), "committed BENCH_core.json baseline is missing"
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == "repro-perf/1"
        assert set(payload["benchmarks"]) == set(all_benches()), (
            "BENCH_core.json and the perf registry disagree; re-run "
            "`python -m repro perf run` and commit the result"
        )

    def test_baseline_is_canonical_json(self):
        from repro.util.jsonio import canonical_dumps

        path = os.path.join(REPO_ROOT, "BENCH_core.json")
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        assert text == canonical_dumps(json.loads(text))

    def test_baseline_is_full_mode(self):
        path = os.path.join(REPO_ROOT, "BENCH_core.json")
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["quick"] is False, "commit a full-mode baseline, not --quick"
