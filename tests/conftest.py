"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.lang.compileprog import compile_program
from repro.lang.programs import get_program


@pytest.fixture
def fib_program():
    """A small fib instance: 15 spawned tasks, answer 5."""
    return get_program("fib", 5)


@pytest.fixture
def tiny_program():
    """Three-task chain G -> P -> C, mirroring Figure 6's scenario."""
    return compile_program(
        """
        (define (g n) (+ 1 (p n)))
        (define (p n) (+ 1 (c n)))
        (define (c n) (* n n))
        (g 4)
        """
    )
