"""Loss notification and send-failure detection under message-drop models.

``Network._notify_loss`` and ``Node.on_delivery_failed`` were previously
exercised only via whole-node death (a message in flight to a processor
that died).  The nemesis drop models reach the same paths with the
destination still alive: a notified drop must feed the sender-side
detection machinery (the §1 "unreachable = faulty" inference), and a
silent drop must leave recovery to the parent's ack timeout.
"""

from __future__ import annotations

import pytest

from repro.config import CostModel, SimConfig
from repro.exp.points import build_policy, build_workload
from repro.faults import MessageChaos, NemesisSchedule
from repro.sim.machine import Machine, run_simulation
from repro.sim.messages import PlacementAck, ResultMsg, TaskPacketMsg
from repro.workloads.trees import balanced_tree
from repro.sim.workload import TreeWorkload

WORKLOAD = "balanced:3:2:20"


def run_chaos(chaos: MessageChaos, policy="rollback", seed=0, trace=True):
    wf, _ = build_workload(WORKLOAD)
    return run_simulation(
        wf(),
        SimConfig(n_processors=4, seed=seed),
        policy=build_policy(policy),
        collect_trace=trace,
        nemesis=NemesisSchedule.of(chaos),
    )


class TestNotifyLossDirect:
    """Unit-level: _notify_loss with a live destination (nemesis path)."""

    def make_machine(self):
        return Machine(
            SimConfig(n_processors=4, seed=0),
            TreeWorkload(balanced_tree(2, 2, 5), "tiny"),
            collect_trace=True,
        )

    def test_notify_loss_reaches_live_sender(self):
        machine = self.make_machine()
        msg = PlacementAck(src=0, dst=2, stamp=None, executor=2, instance=1,
                           parent_instance=99)
        machine.network._notify_loss(msg)
        assert machine.metrics.delivery_failures == 1
        # the notification is scheduled detection_timeout out
        while machine.queue.step() is not None:
            pass
        # the sender inferred the destination faulty (§1)
        assert 2 in machine.node(0).known_dead
        assert machine.metrics.failures_detected == 1

    def test_notify_loss_skips_dead_sender(self):
        machine = self.make_machine()
        machine.node(0).kill()
        machine.network._notify_loss(ResultMsg(src=0, dst=2))
        while machine.queue.step() is not None:
            pass
        assert machine.metrics.failures_detected == 0

    def test_drop_message_notify_routes_through_notify_loss(self):
        machine = self.make_machine()
        msg = TaskPacketMsg(src=1, dst=3, packet=None)
        machine.network.drop_message(msg, notify=True, reason="chaos")
        assert machine.metrics.nemesis_dropped == 1
        assert machine.metrics.delivery_failures == 1
        drops = machine.trace.of_kind("nemesis_drop")
        assert len(drops) == 1 and drops[0].detail["msg_type"] == "TaskPacketMsg"

    def test_silent_drop_skips_notify_loss(self):
        machine = self.make_machine()
        machine.network.drop_message(
            TaskPacketMsg(src=1, dst=3, packet=None), notify=False, reason="chaos"
        )
        assert machine.metrics.nemesis_dropped == 1
        assert machine.metrics.delivery_failures == 0

    def test_dropped_task_packet_rebalances_inbound_pending(self):
        machine = self.make_machine()
        machine.node(3).inbound_pending = 2
        machine.network.drop_message(
            TaskPacketMsg(src=1, dst=3, packet=None), notify=False, reason="chaos"
        )
        assert machine.node(3).inbound_pending == 1
        # non-packet drops leave the counter alone
        machine.network.drop_message(
            ResultMsg(src=1, dst=3), notify=False, reason="chaos"
        )
        assert machine.node(3).inbound_pending == 1


class TestDropModelsEndToEnd:
    def test_notified_drops_drive_send_failure_detection(self):
        # Every task packet and ack on the 0->1 link is lost with
        # notification: senders detect, write node 1 off, and re-place
        # the work; the run still completes and verifies.
        chaos = MessageChaos(
            drop={(0, 1): 1.0}, notify_drops=True
        )
        result = run_chaos(chaos)
        m = result.metrics
        assert result.completed and result.verified is True
        assert m.nemesis_dropped > 0
        assert m.delivery_failures >= m.nemesis_dropped
        assert m.failures_detected > 0 and m.failures_injected == 0
        failed = result.trace.of_kind("delivery_failed")
        assert failed, "on_delivery_failed never ran"

    def test_silent_drops_recover_via_ack_timeout(self):
        chaos = MessageChaos(drop=0.15)  # silent: no loss notification
        result = run_chaos(chaos)
        m = result.metrics
        assert result.completed and result.verified is True
        assert m.nemesis_dropped > 0
        assert m.delivery_failures == 0  # nobody was notified
        # the ack timers re-issued the lost spawns
        reissues = [
            r for r in result.trace.of_kind("recovery_reissue")
            if r.detail["reason"] == "ack-timeout"
        ]
        assert reissues, "ack-timeout path never fired"
        assert m.tasks_reissued >= len(reissues)

    def test_notified_drop_of_result_reroutes_or_aborts(self):
        # Force an undeliverable-result path without any real death:
        # block result traffic on every link out of node 1 mid-run via
        # notified drops of the packets that would ack... instead use
        # the partition-free scenario: drop task packets from node 2
        # with notify so node 2's sends mark peers dead, then its
        # completed results hit the known-dead short-circuit.
        chaos = MessageChaos(
            drop={(2, 0): 1.0, (2, 1): 1.0, (2, 3): 1.0}, notify_drops=True
        )
        result = run_chaos(chaos, policy="splice")
        assert result.completed and result.verified is True

    def test_faster_detection_than_ack_timeout(self):
        # The same drop schedule recovers sooner with notification than
        # silently (loss detection at detection_timeout=50 vs the
        # state-b ack timeout at 400) — the claim sim/failure.py makes
        # about send-failure detection, now pinned under a drop model.
        silent = run_chaos(MessageChaos(drop={(0, 1): 1.0}), trace=False)
        notified = run_chaos(
            MessageChaos(drop={(0, 1): 1.0}, notify_drops=True), trace=False
        )
        assert silent.completed and notified.completed
        assert notified.makespan < silent.makespan
