"""End-to-end machine tests: fault-free execution, determinism, oracle
equivalence across workloads, topologies, and schedulers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CostModel, SimConfig
from repro.core import NoFaultTolerance, RollbackRecovery
from repro.errors import SimError
from repro.lang.programs import PROGRAMS, expected_answer, get_program
from repro.sim import FaultSchedule, InterpWorkload, Machine, TreeWorkload
from repro.sim.machine import run_simulation
from repro.workloads.suite import WORKLOADS, get_workload
from repro.workloads.trees import balanced_tree, random_tree


class TestFaultFreeOracle:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_every_program_matches_oracle(self, name):
        result = run_simulation(
            InterpWorkload(get_program(name), name=name),
            SimConfig(n_processors=4, seed=3),
            policy=NoFaultTolerance(),
            collect_trace=False,
        )
        assert result.completed
        assert result.verified is True
        assert result.value == expected_answer(name)

    @pytest.mark.parametrize("wname", sorted(WORKLOADS))
    def test_every_suite_workload_runs(self, wname):
        result = run_simulation(
            get_workload(wname),
            SimConfig(n_processors=4, seed=5),
            policy=RollbackRecovery(),
            collect_trace=False,
        )
        assert result.completed and result.verified is True

    @pytest.mark.parametrize("topology,n", [
        ("complete", 4), ("ring", 5), ("mesh", 6), ("hypercube", 4), ("star", 4),
    ])
    def test_every_topology(self, topology, n):
        result = run_simulation(
            InterpWorkload(get_program("fib", 8), name="fib"),
            SimConfig(n_processors=n, topology=topology, seed=1),
            policy=NoFaultTolerance(),
            collect_trace=False,
        )
        assert result.completed and result.verified is True

    @pytest.mark.parametrize("scheduler", ["gradient", "random", "round_robin", "local", "static"])
    def test_every_scheduler(self, scheduler):
        result = run_simulation(
            InterpWorkload(get_program("fib", 8), name="fib"),
            SimConfig(n_processors=4, scheduler=scheduler, seed=1),
            policy=NoFaultTolerance(),
            collect_trace=False,
        )
        assert result.completed and result.verified is True

    def test_single_processor(self):
        result = run_simulation(
            InterpWorkload(get_program("fib", 7), name="fib"),
            SimConfig(n_processors=1, seed=0),
            policy=NoFaultTolerance(),
        )
        assert result.completed and result.verified is True

    def test_latency_jitter_preserves_answer(self):
        cost = CostModel(latency_jitter=4.0)
        result = run_simulation(
            InterpWorkload(get_program("fib", 8), name="fib"),
            SimConfig(n_processors=4, seed=9, cost=cost),
            policy=NoFaultTolerance(),
        )
        assert result.completed and result.verified is True


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def one():
            return run_simulation(
                InterpWorkload(get_program("fib", 8), name="fib"),
                SimConfig(n_processors=4, seed=42,
                          cost=CostModel(latency_jitter=3.0)),
                policy=RollbackRecovery(),
            )

        a, b = one(), one()
        assert a.makespan == b.makespan
        assert [str(r) for r in a.trace] == [str(r) for r in b.trace]

    def test_different_seed_same_answer(self):
        values = set()
        for seed in range(4):
            result = run_simulation(
                InterpWorkload(get_program("nqueens", 4), name="nq"),
                SimConfig(n_processors=4, seed=seed,
                          cost=CostModel(latency_jitter=5.0)),
                policy=NoFaultTolerance(),
                collect_trace=False,
            )
            assert result.completed
            values.add(result.value)
        assert values == {2}

    def test_stamp_set_invariant_across_seeds(self):
        """The set of logical task stamps is a function of the program
        alone (§3.1), not of scheduling."""

        def stamps(seed):
            machine = Machine(
                SimConfig(n_processors=4, seed=seed, cost=CostModel(latency_jitter=5.0)),
                InterpWorkload(get_program("fib", 7), name="fib"),
                NoFaultTolerance(),
            )
            machine.run()
            return {
                str(t.stamp) for t in machine.instance_registry.values()
            }

        assert stamps(1) == stamps(99)


class TestMachineMechanics:
    def test_single_shot(self):
        machine = Machine(
            SimConfig(n_processors=2, seed=0),
            TreeWorkload(balanced_tree(2, 2, 5), "bal"),
            NoFaultTolerance(),
        )
        machine.run()
        with pytest.raises(SimError):
            machine.run()

    def test_fault_on_unknown_processor_rejected(self):
        machine = Machine(
            SimConfig(n_processors=2, seed=0),
            TreeWorkload(balanced_tree(2, 2, 5), "bal"),
            NoFaultTolerance(),
        )
        with pytest.raises(SimError):
            machine.run(faults=FaultSchedule.single(10.0, 7))

    def test_stall_reported_not_raised(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(3, 2, 30), "bal"),
            SimConfig(n_processors=3, seed=0),
            policy=NoFaultTolerance(),
            faults=FaultSchedule.single(100.0, 1),
        )
        assert not result.completed
        assert result.stall_reason is not None
        assert not result.correct

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Machine(
                SimConfig(n_processors=0),
                TreeWorkload(balanced_tree(1, 2, 5), "bal"),
            )
        with pytest.raises(ValueError):
            SimConfig(topology="nope").validate()
        with pytest.raises(ValueError):
            SimConfig(n_processors=6, topology="hypercube").validate()

    def test_metrics_accounting(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(3, 2, 10), "bal"),
            SimConfig(n_processors=4, seed=0),
            policy=NoFaultTolerance(),
        )
        m = result.metrics
        # 15 tree tasks + root host
        assert m.tasks_accepted == 15
        assert m.tasks_completed == 16
        assert m.steps_total > 0
        assert m.messages_total > 0
        assert m.steps_wasted == 0

    def test_utilization_bounded(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(4, 2, 20), "bal"),
            SimConfig(n_processors=4, seed=0),
            policy=NoFaultTolerance(),
        )
        for node, util in result.metrics.utilization(result.makespan).items():
            assert 0.0 <= util <= 1.0 + 1e-9

    def test_summary_strings(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(2, 2, 5), "bal"),
            SimConfig(n_processors=2, seed=0),
            policy=RollbackRecovery(),
        )
        assert "completed" in result.summary()
        assert "verified" in result.summary()


class TestParallelism:
    def test_more_processors_not_slower(self):
        """Wide workloads must get real speedup from the substrate."""
        from repro.workloads.trees import wide_tree

        spec = wide_tree(32, work=100)
        times = {}
        for n in (1, 4, 8):
            result = run_simulation(
                TreeWorkload(spec, "wide"),
                SimConfig(n_processors=n, seed=0),
                policy=NoFaultTolerance(),
                collect_trace=False,
            )
            assert result.completed
            times[n] = result.makespan
        assert times[4] < times[1]
        assert times[8] <= times[4]
        # speedup on 32 independent 100-step leaves should be substantial
        assert times[1] / times[4] > 2.0


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=8),
    scheduler=st.sampled_from(["gradient", "random", "round_robin", "static"]),
)
def test_random_tree_oracle_property(seed, n, scheduler):
    """Any random tree on any machine shape computes its spec's value."""
    spec = random_tree(seed=seed, target_tasks=30, max_fanout=4)
    result = run_simulation(
        TreeWorkload(spec, "rand"),
        SimConfig(n_processors=n, seed=seed, scheduler=scheduler),
        policy=NoFaultTolerance(),
        collect_trace=False,
    )
    assert result.completed
    assert result.value == spec.expected_value()
