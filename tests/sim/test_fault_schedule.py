"""FaultSchedule construction invariants (regression: duplicate faults)."""

from __future__ import annotations

import pytest

from repro.sim.failure import Fault, FaultSchedule


class TestFaultScheduleOf:
    def test_orders_by_time_then_node(self):
        schedule = FaultSchedule.of(Fault(90.0, 1), Fault(10.0, 3), Fault(10.0, 0))
        assert [(f.time, f.node) for f in schedule] == [
            (10.0, 0), (10.0, 3), (90.0, 1),
        ]

    def test_deduplicates_identical_faults(self):
        # Regression: .of() silently kept duplicate (time, node) entries,
        # so len()/nodes() double-counted a single crash.
        schedule = FaultSchedule.of(Fault(50.0, 1), Fault(50.0, 1), Fault(70.0, 2))
        assert len(schedule) == 2
        assert schedule.nodes() == [1, 2]

    def test_same_node_different_times_both_kept(self):
        # Not duplicates: a second fault on an already-dead node is a
        # no-op at injection time but remains a distinct schedule entry.
        schedule = FaultSchedule.of(Fault(50.0, 1), Fault(80.0, 1))
        assert len(schedule) == 2

    def test_same_time_different_nodes_both_kept(self):
        schedule = FaultSchedule.of(Fault(50.0, 1), Fault(50.0, 2))
        assert len(schedule) == 2

    def test_empty_and_single(self):
        assert len(FaultSchedule.of()) == 0
        assert len(FaultSchedule.none()) == 0
        assert FaultSchedule.single(10.0, 1).nodes() == [1]

    def test_fault_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            Fault(-1.0, 0)
        with pytest.raises(ValueError, match="real processors"):
            Fault(1.0, -1)
