"""Tests for traces, metrics, and failure schedules."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core import RollbackRecovery
from repro.sim import Fault, FaultSchedule, TreeWorkload
from repro.sim.machine import run_simulation
from repro.sim.metrics import Metrics
from repro.sim.trace import Trace, TraceRecord
from repro.workloads.trees import balanced_tree


class TestTrace:
    def test_emit_and_query(self):
        trace = Trace()
        trace.emit(1.0, 0, "spawn", stamp="0")
        trace.emit(2.0, 1, "task_accepted", stamp="0")
        trace.emit(3.0, 1, "task_completed", stamp="0")
        assert len(trace) == 3
        assert trace.count("spawn") == 1
        assert trace.first("task_accepted").time == 2.0
        assert trace.last("task_completed").node == 1
        assert len(trace.of_kind("spawn", "task_completed")) == 2

    def test_unknown_kind_asserts(self):
        trace = Trace()
        with pytest.raises(AssertionError):
            trace.emit(1.0, 0, "not-a-kind")

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.emit(1.0, 0, "spawn")
        assert len(trace) == 0

    def test_where_and_render(self):
        trace = Trace()
        trace.emit(1.0, 0, "spawn", stamp="0.1")
        trace.emit(2.0, 2, "spawn", stamp="0.2")
        assert len(trace.where(lambda r: r.node == 2)) == 1
        text = trace.render(kinds=("spawn",), limit=1)
        assert "spawn" in text and "0.1" in text

    def test_machine_trace_disabled_for_benches(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(3, 2, 10), "bal"),
            SimConfig(n_processors=3, seed=0),
            policy=RollbackRecovery(),
            collect_trace=False,
        )
        assert result.completed
        assert len(result.trace) == 0


class TestMetrics:
    def test_message_recording(self):
        m = Metrics()
        m.record_message("ResultMsg", 2)
        m.record_message("ResultMsg", 1)
        m.record_message("PlacementAck", 1)
        assert m.messages_total == 3
        assert m.message_hops == 4
        assert m.messages_by_type["ResultMsg"] == 2

    def test_busy_and_utilization(self):
        m = Metrics()
        m.add_busy(0, 50.0)
        m.add_busy(0, 25.0)
        m.add_busy(1, 100.0)
        util = m.utilization(100.0)
        assert util[0] == pytest.approx(0.75)
        assert util[1] == pytest.approx(1.0)
        assert m.utilization(0.0) == {0: 0.0, 1: 0.0}

    def test_detection_latency_none_without_failure(self):
        assert Metrics().detection_latency() is None

    def test_summary_rows_label_value_pairs(self):
        rows = Metrics().summary_rows()
        assert all(len(r) == 2 for r in rows)


class TestFaultSchedule:
    def test_single(self):
        schedule = FaultSchedule.single(10.0, 2)
        assert len(schedule) == 1
        assert schedule.nodes() == [2]

    def test_of_sorts_by_time(self):
        schedule = FaultSchedule.of(Fault(20.0, 1), Fault(5.0, 0))
        assert [f.time for f in schedule] == [5.0, 20.0]

    def test_none(self):
        assert len(FaultSchedule.none()) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Fault(-1.0, 0)

    def test_super_root_not_failable(self):
        with pytest.raises(ValueError):
            Fault(1.0, -1)

    def test_duplicate_fault_ignored_at_injection(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(3, 2, 20), "bal"),
            SimConfig(n_processors=4, seed=0),
            policy=RollbackRecovery(),
            faults=FaultSchedule.of(Fault(100.0, 1), Fault(150.0, 1)),
        )
        assert result.completed
        assert result.metrics.failures_injected == 1


class TestTraceRecordRendering:
    def test_str_contains_fields(self):
        record = TraceRecord(12.5, 3, "spawn", {"stamp": "0.1"})
        text = str(record)
        assert "12.5" in text and "spawn" in text and "0.1" in text
