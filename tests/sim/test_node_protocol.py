"""Node-level protocol tests: acks, results, duplicates, failure paths."""

from __future__ import annotations

import pytest

from repro.config import CostModel, SimConfig
from repro.core import NoFaultTolerance, RollbackRecovery, SpliceRecovery
from repro.core.packets import SUPER_ROOT_NODE, ReturnAddress
from repro.core.stamps import LevelStamp
from repro.errors import DeterminacyViolationError, ProtocolError
from repro.sim import FaultSchedule, TreeWorkload
from repro.sim.machine import Machine
from repro.sim.messages import ResultMsg, TaskPacketMsg
from repro.sim.task import SpawnState, TaskStatus
from repro.workloads.trees import balanced_tree
from repro.sim.behavior import TreeSpec, TreeTaskSpec


def small_machine(policy=None, n=3, seed=0, **cost_kw):
    return Machine(
        SimConfig(n_processors=n, seed=seed, cost=CostModel(**cost_kw)),
        TreeWorkload(balanced_tree(2, 2, 10), "bal"),
        policy if policy is not None else RollbackRecovery(),
    )


class TestAcks:
    def test_spawn_records_move_to_placed(self):
        m = small_machine()
        result = m.run()
        assert result.completed
        for task in m.instance_registry.values():
            for record in task.spawn_records.values():
                assert record.state in (SpawnState.PLACED, SpawnState.FULFILLED)

    def test_ack_cancels_timer(self):
        m = small_machine()
        result = m.run()
        for task in m.instance_registry.values():
            for record in task.spawn_records.values():
                assert record.ack_timer is None or record.ack_timer.cancelled

    def test_no_spurious_reissues_fault_free(self):
        m = small_machine()
        result = m.run()
        assert result.metrics.tasks_reissued == 0


class TestResultPaths:
    def test_unknown_addressee_ignored(self):
        """The §4.2 rule of thumb: unknown packets are ignored."""
        m = small_machine()
        result = m.run()
        node = m.node(0)
        stray = ResultMsg(
            src=1,
            dst=0,
            sender_stamp=LevelStamp.of(0, 9),
            value=1,
            addressee=ReturnAddress(0, 99_999),
        )
        before = m.metrics.results_ignored
        node._handle_result(stray)
        assert m.metrics.results_ignored == before + 1

    def test_duplicate_equal_results_ignored(self):
        m = small_machine()
        result = m.run()
        # replay a legitimate delivered result: must be flagged duplicate
        host = m.instance_registry[m.root_host_uid]
        record = host.spawn_records[0]
        msg = ResultMsg(
            src=record.executor,
            dst=SUPER_ROOT_NODE,
            sender_stamp=record.child_stamp,
            value=record.result,
            addressee=ReturnAddress(SUPER_ROOT_NODE, host.uid),
        )
        before = m.metrics.results_duplicate
        # host completed, so this lands in the case-8 discard path
        m.super_root._handle_result(msg)
        assert (
            m.metrics.results_duplicate + m.metrics.results_ignored
            >= before + 1
        )

    def test_conflicting_duplicate_raises_determinacy_violation(self):
        spec = TreeSpec({0: TreeTaskSpec(0, 5, (1,)), 1: TreeTaskSpec(1, 500, ())})
        m = Machine(
            SimConfig(n_processors=2, seed=0),
            TreeWorkload(spec, "t"),
            RollbackRecovery(),
        )
        # run until the root's child record exists but is unfulfilled
        m._start_root_host()
        m.queue.run(until=lambda: m.metrics.tasks_accepted >= 2, max_events=5000)
        root_task = next(
            t for t in m.instance_registry.values()
            if t.stamp == LevelStamp.of(0)
        )
        record = root_task.spawn_records[0]
        node = m.node(root_task.node)
        good = ResultMsg(
            src=0, dst=root_task.node,
            sender_stamp=record.child_stamp, value=123,
            addressee=ReturnAddress(root_task.node, root_task.uid),
        )
        node._handle_result(good)
        conflicting = ResultMsg(
            src=0, dst=root_task.node,
            sender_stamp=record.child_stamp, value=456,
            addressee=ReturnAddress(root_task.node, root_task.uid),
        )
        with pytest.raises(DeterminacyViolationError):
            node._handle_result(conflicting)


class TestFailureMechanics:
    def test_kill_aborts_resident_tasks(self):
        m = small_machine()
        m._start_root_host()
        m.queue.run(until=lambda: m.metrics.tasks_accepted >= 3, max_events=5000)
        victim = next(n for n in m.processors() if n.live_tasks())
        live_before = len(victim.live_tasks())
        victim.kill()
        assert not victim.alive
        assert victim.live_tasks() == []
        assert victim.load() == 0

    def test_failure_notice_idempotent(self):
        m = small_machine()
        result = m.run()
        node = m.node(0)
        before = m.metrics.failures_detected
        node.on_failure_notice(1)
        node.on_failure_notice(1)
        assert m.metrics.failures_detected == before + 1

    def test_super_root_rejects_task_packets(self):
        m = small_machine()
        m.run()
        packet_msg = TaskPacketMsg(
            src=0,
            dst=SUPER_ROOT_NODE,
            packet=next(iter(m.instance_registry.values())).packet,
        )
        with pytest.raises(ProtocolError):
            m.super_root.on_message(packet_msg)

    def test_detection_latency_measured(self):
        m = small_machine(detector_delay=25.0)
        result = m.run(faults=FaultSchedule.single(50.0, 1))
        latency = result.metrics.detection_latency()
        assert latency is not None
        assert latency >= 25.0


class TestAckTimeoutRecovery:
    def test_packet_lost_to_dying_node_reissued(self):
        """A packet in flight toward a node that dies before delivery is
        re-placed (state-b recovery, §4.3.2)."""
        spec = TreeSpec(
            {
                0: TreeTaskSpec(0, 50, tuple(range(1, 9))),
                **{i: TreeTaskSpec(i, 60, ()) for i in range(1, 9)},
            }
        )
        m = Machine(
            SimConfig(n_processors=4, seed=0),
            TreeWorkload(spec, "fan"),
            RollbackRecovery(),
        )
        # kill node 2 just as the fan-out packets are in flight
        result = m.run(faults=FaultSchedule.single(54.0, 2))
        assert result.completed, result.stall_reason
        assert result.verified is True
