"""Tests for interconnection topologies and routing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.packets import SUPER_ROOT_NODE
from repro.errors import TopologyError
from repro.sim.topology import Topology

KINDS = ("ring", "complete", "star", "mesh", "hypercube")


def sizes_for(kind: str):
    if kind == "hypercube":
        return [1, 2, 4, 8, 16]
    return [1, 2, 3, 4, 7, 9]


class TestConstruction:
    @pytest.mark.parametrize("kind", KINDS)
    def test_builds_connected(self, kind):
        for n in sizes_for(kind):
            topo = Topology(kind, n)
            for i in range(n):
                for j in range(n):
                    assert topo.hops(i, j) >= 0

    def test_unknown_kind(self):
        with pytest.raises(TopologyError):
            Topology("torus", 4)

    def test_zero_nodes(self):
        with pytest.raises(TopologyError):
            Topology("ring", 0)

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(TopologyError):
            Topology("hypercube", 6)


class TestDistances:
    def test_complete_all_one_hop(self):
        topo = Topology("complete", 5)
        assert all(
            topo.hops(i, j) == 1 for i in range(5) for j in range(5) if i != j
        )

    def test_ring_distance(self):
        topo = Topology("ring", 6)
        assert topo.hops(0, 3) == 3
        assert topo.hops(0, 5) == 1
        assert topo.diameter == 3

    def test_star_center(self):
        topo = Topology("star", 5)
        assert topo.hops(0, 4) == 1
        assert topo.hops(1, 2) == 2
        assert topo.diameter == 2

    def test_hypercube_distance_is_hamming(self):
        topo = Topology("hypercube", 8)
        assert topo.hops(0b000, 0b111) == 3
        assert topo.hops(0b001, 0b011) == 1
        assert topo.diameter == 3

    def test_mesh_manhattan(self):
        topo = Topology("mesh", 9)  # 3x3
        assert topo.hops(0, 8) == 4
        assert topo.hops(0, 4) == 2

    def test_self_distance_zero(self):
        topo = Topology("ring", 4)
        assert all(topo.hops(i, i) == 0 for i in range(4))

    def test_super_root_one_hop(self):
        topo = Topology("ring", 6)
        assert topo.hops(SUPER_ROOT_NODE, 3) == 1
        assert topo.hops(3, SUPER_ROOT_NODE) == 1
        assert topo.hops(SUPER_ROOT_NODE, SUPER_ROOT_NODE) == 0


class TestNeighbours:
    def test_ring_two_neighbours(self):
        topo = Topology("ring", 5)
        for i in range(5):
            assert len(topo.neighbours(i)) == 2

    def test_two_node_ring_single_edge(self):
        topo = Topology("ring", 2)
        assert topo.neighbours(0) == [1]
        assert topo.hops(0, 1) == 1

    def test_super_root_neighbours_everyone(self):
        topo = Topology("mesh", 6)
        assert topo.neighbours(SUPER_ROOT_NODE) == list(range(6))

    def test_neighbours_sorted(self):
        topo = Topology("hypercube", 8)
        for i in range(8):
            ns = topo.neighbours(i)
            assert ns == sorted(ns)


@given(
    kind=st.sampled_from(["ring", "complete", "star", "mesh"]),
    n=st.integers(min_value=2, max_value=12),
)
def test_metric_properties(kind, n):
    """Hop counts form a metric: symmetry and triangle inequality."""
    topo = Topology(kind, n)
    for a in range(n):
        for b in range(n):
            assert topo.hops(a, b) == topo.hops(b, a)
            for c in range(n):
                assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)


@given(
    kind=st.sampled_from(["ring", "complete", "star", "mesh"]),
    n=st.integers(min_value=2, max_value=12),
)
def test_neighbour_distance_one(kind, n):
    topo = Topology(kind, n)
    for a in range(n):
        for b in topo.neighbours(a):
            assert topo.hops(a, b) == 1
