"""Tests for task behaviors: the in-task evaluator and tree execution.

The critical property tested here is **stamp stability**: re-running a
behavior with child results delivered in a different order must issue the
same demands under the same digits (paper §3.1's structural uniqueness,
which splice inheritance relies on)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packets import WorkSpec
from repro.errors import ArityError, TypeMismatchError, UnboundVariableError
from repro.lang.compileprog import compile_program
from repro.lang.interp import evaluate
from repro.lang.programs import get_program
from repro.sim.behavior import (
    Advance,
    InterpBehavior,
    TreeBehavior,
    TreeSpec,
    TreeTaskSpec,
)


def drive_to_completion(behavior, resolver):
    """Run a behavior, resolving demands via ``resolver(work) -> value``,
    delivering results in the order demands were issued."""
    delivered = {}
    pending = []
    for _ in range(10_000):
        adv = behavior.advance(delivered)
        delivered = {}
        if adv.completed:
            return adv.value
        pending.extend(adv.demands)
        if not pending:
            if adv.yielded:
                continue
            raise AssertionError("behavior blocked with no pending demands")
        demand = pending.pop(0)
        delivered = {demand.digit: resolver(demand.work)}
    raise AssertionError("behavior did not complete")


def interp_resolver(program):
    """Resolve a demanded application by sequential evaluation."""
    from repro.lang.env import EMPTY_ENV
    from repro.lang.interp import EvalStats, _Interp

    def resolve(work: WorkSpec):
        fdef = program.defs[work.fn_name]
        interp = _Interp(program, EvalStats())
        return interp.eval(fdef.body, EMPTY_ENV.extend(fdef.params, work.args))

    return resolve


class TestInterpBehavior:
    def test_local_expression_completes_in_one_advance(self):
        program = compile_program("(+ 1 (* 2 3))")
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        adv = behavior.advance({})
        assert adv.completed and adv.value == 7
        assert adv.steps > 0

    def test_demands_for_global_applications(self):
        program = compile_program(
            "(define (f x) (* x x)) (+ (f 2) (f 3))"
        )
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        adv = behavior.advance({})
        assert not adv.completed
        assert len(adv.demands) == 2
        assert all(d.work.fn_name == "f" for d in adv.demands)
        # distinct structural digits
        assert len({d.digit for d in adv.demands}) == 2

    def test_completes_with_delivered_results(self):
        program = compile_program(
            "(define (f x) (* x x)) (+ (f 2) (f 3))"
        )
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        adv = behavior.advance({})
        results = {d.digit: d.work.args[0] ** 2 for d in adv.demands}
        adv2 = behavior.advance(results)
        assert adv2.completed and adv2.value == 13

    def test_matches_sequential_oracle(self):
        program = get_program("fib", 7)
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        value = drive_to_completion(behavior, interp_resolver(program))
        assert value == evaluate(program)

    def test_apply_work_spec(self):
        program = compile_program("(define (g a b) (- a b)) (g 1 2)")
        behavior = InterpBehavior.for_work(
            program, WorkSpec(kind="apply", fn_name="g", args=(10, 4))
        )
        adv = behavior.advance({})
        assert adv.completed and adv.value == 6

    def test_apply_arity_checked(self):
        program = compile_program("(define (g a) a) (g 1)")
        with pytest.raises(ArityError):
            InterpBehavior.for_work(program, WorkSpec(kind="apply", fn_name="g", args=(1, 2)))

    def test_unknown_work_kind(self):
        program = compile_program("1")
        with pytest.raises(ValueError):
            InterpBehavior.for_work(program, WorkSpec(kind="tree", tree_node=0))

    def test_if_demands_only_taken_branch(self):
        program = compile_program(
            """
            (define (f x) x)
            (define (g x) x)
            (if #t (f 1) (g 2))
            """
        )
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        adv = behavior.advance({})
        assert [d.work.fn_name for d in adv.demands] == ["f"]

    def test_errors_propagate(self):
        program = compile_program("(3 4)")
        behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        with pytest.raises(TypeMismatchError):
            behavior.advance({})

    def test_stamp_stability_under_delivery_orders(self):
        """Digits are identical whatever order results arrive in."""
        program = compile_program(
            """
            (define (f x) (* x 2))
            (define (g x) (+ x 1))
            (+ (f 1) (g 2) (f (g 3)))
            """
        )

        def demands_seen(order):
            behavior = InterpBehavior.for_work(program, WorkSpec(kind="main"))
            seen = {}
            pending = {}
            delivered = {}
            for _ in range(50):
                adv = behavior.advance(delivered)
                delivered = {}
                if adv.completed:
                    return seen, adv.value
                for d in adv.demands:
                    seen[d.digit] = (d.work.fn_name, d.work.args)
                    pending[d.digit] = d
                if not pending:
                    raise AssertionError("blocked")
                # deliver per requested order
                keys = sorted(pending, key=repr, reverse=(order == "reversed"))
                digit = keys[0]
                demand = pending.pop(digit)
                fdef = program.defs[demand.work.fn_name]
                from repro.lang.env import EMPTY_ENV
                from repro.lang.interp import _Interp, EvalStats

                interp = _Interp(program, EvalStats())
                delivered = {
                    digit: interp.eval(
                        fdef.body, EMPTY_ENV.extend(fdef.params, demand.work.args)
                    )
                }
            raise AssertionError("did not complete")

        seen_fwd, value_fwd = demands_seen("forward")
        seen_rev, value_rev = demands_seen("reversed")
        assert seen_fwd == seen_rev
        assert value_fwd == value_rev

    def test_reexecution_identical_demands(self):
        """A fresh activation of the same packet issues identical
        first-round demands — the functional-checkpoint contract."""
        program = get_program("tak", 6, 3, 1)
        b1 = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        b2 = InterpBehavior.for_work(program, WorkSpec(kind="main"))
        a1, a2 = b1.advance({}), b2.advance({})
        assert [(d.digit, d.work) for d in a1.demands] == [
            (d.digit, d.work) for d in a2.demands
        ]


class TestTreeBehavior:
    def _spec(self):
        return TreeSpec(
            {
                0: TreeTaskSpec(0, 10, (1, 2), value=5),
                1: TreeTaskSpec(1, 3, (), value=7),
                2: TreeTaskSpec(2, 4, (), value=11),
            }
        )

    def test_leaf_completes_immediately(self):
        behavior = TreeBehavior(self._spec(), 1)
        adv = behavior.advance({})
        assert adv.completed and adv.value == 7
        assert adv.steps == 3

    def test_inner_demands_children_in_order(self):
        behavior = TreeBehavior(self._spec(), 0)
        adv = behavior.advance({})
        assert not adv.completed
        assert [d.digit for d in adv.demands] == [0, 1]
        assert [d.work.tree_node for d in adv.demands] == [1, 2]

    def test_combines_after_all_children(self):
        behavior = TreeBehavior(self._spec(), 0)
        behavior.advance({})
        assert not behavior.advance({0: 7}).completed
        adv = behavior.advance({1: 11})
        assert adv.completed and adv.value == 5 + 7 + 11

    def test_expected_value_consistent(self):
        spec = self._spec()
        behavior = TreeBehavior(spec, 0)
        behavior.advance({})
        adv = behavior.advance({0: 7, 1: 11})
        assert adv.value == spec.expected_value()

    def test_chunked_work_yields(self):
        spec = TreeSpec({0: TreeTaskSpec(0, 100, (), chunk=30)})
        behavior = TreeBehavior(spec, 0)
        advances = []
        for _ in range(10):
            adv = behavior.advance({})
            advances.append(adv)
            if adv.completed:
                break
        yields = [a for a in advances if a.yielded]
        assert len(yields) == 3
        assert sum(a.steps for a in advances) == 100
        assert advances[-1].completed

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TreeSpec({1: TreeTaskSpec(1, 1, ())})  # no root 0
        with pytest.raises(ValueError):
            TreeSpec({0: TreeTaskSpec(0, 1, (9,))})  # dangling child

    def test_spec_stats(self):
        spec = self._spec()
        assert spec.expected_value() == 23
        assert spec.depth() == 1
        assert len(spec) == 3
        assert spec.total_work() == 10 + 1 + 3 + 4  # root work+post, leaves
