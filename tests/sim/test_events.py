"""Tests for the deterministic event queue."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationBudgetError
from repro.sim.events import PRIORITY_CONTROL, PRIORITY_MESSAGE, PRIORITY_RUN, EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run(until=lambda: False)
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_seq(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("run"), priority=PRIORITY_RUN)
        q.schedule(1.0, lambda: log.append("msg1"), priority=PRIORITY_MESSAGE)
        q.schedule(1.0, lambda: log.append("ctl"), priority=PRIORITY_CONTROL)
        q.schedule(1.0, lambda: log.append("msg2"), priority=PRIORITY_MESSAGE)
        q.run(until=lambda: False)
        assert log == ["msg1", "msg2", "ctl", "run"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(5.0, lambda: seen.append(q.now))
        q.run(until=lambda: False)
        assert seen == [5.0]
        assert q.now == 5.0

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10.0, lambda: None)
        q.step()
        with pytest.raises(ValueError):
            q.schedule(5.0, lambda: None)

    def test_after_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().after(-1.0, lambda: None)

    def test_after_relative(self):
        q = EventQueue()
        q.schedule(10.0, lambda: q.after(5.0, lambda: None, label="later"))
        q.step()
        assert q.step() == "later"
        assert q.now == 15.0

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: q.schedule(2.0, lambda: log.append("nested")))
        q.run(until=lambda: False)
        assert log == ["nested"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        log = []
        handle = q.schedule(1.0, lambda: log.append("x"))
        q.cancel(handle)
        q.run(until=lambda: False)
        assert log == []

    def test_pending_excludes_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert q.pending() == 2
        q.cancel(h)
        assert q.pending() == 1

    def test_is_empty_skips_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.cancel(h)
        assert q.is_empty()


class TestBudgets:
    def test_event_budget(self):
        q = EventQueue()

        def reschedule():
            q.after(1.0, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(SimulationBudgetError):
            q.run(until=lambda: False, max_events=100)

    def test_time_budget(self):
        q = EventQueue()

        def reschedule():
            q.after(10.0, reschedule)

        q.schedule(0.0, reschedule)
        with pytest.raises(SimulationBudgetError):
            q.run(until=lambda: False, max_time=500.0)

    def test_until_stops(self):
        q = EventQueue()
        count = []
        for i in range(10):
            q.schedule(float(i), lambda: count.append(1))
        q.run(until=lambda: len(count) >= 3)
        assert len(count) == 3

    def test_drained_queue_returns(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run(until=lambda: False)  # must not hang or raise
        assert q.is_empty()


@given(st.lists(st.tuples(st.floats(0, 100), st.integers(0, 2)), max_size=30))
def test_global_time_monotonicity(entries):
    """Execution times never go backwards, whatever the schedule."""
    q = EventQueue()
    seen = []
    for t, prio in entries:
        q.schedule(t, lambda: seen.append(q.now), priority=prio)
    q.run(until=lambda: False)
    assert seen == sorted(seen)
    assert len(seen) == len(entries)
