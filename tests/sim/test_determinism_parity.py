"""Determinism parity: the no-trace fast path changes nothing but the trace.

Two guarantees, both load-bearing for the perf work:

1. **Trace on vs. off**: identical ``(workload, config, faults, policy)``
   inputs produce identical values, makespans, and metrics whether the
   run records a full :class:`Trace` or takes the no-trace fast path
   (``collect_trace=False``) — the only permitted difference is the
   trace itself.
2. **Golden digests**: the same runs reproduce the byte-identical
   canonical digests captured from the pre-optimization simulator core
   (``golden_digests.jsonl``, recorded at the commit before the hot-path
   overhaul).  Any change to scheduling, checkpointing, delivery, or
   accounting that alters observable behaviour trips this — speed must
   come from implementation, never semantics.

If a *deliberate* semantic change invalidates the digests, regenerate
the fixture with ``python tests/sim/test_determinism_parity.py`` and
say so in the commit.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SimConfig
from repro.exp.points import build_policy, build_workload
from repro.sim.failure import Fault, FaultSchedule
from repro.sim.machine import run_simulation

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden_digests.jsonl")

#: (workload, policy, processors, fault fracs [(frac, node)...], trace)
CASES = [
    ("balanced:6:2:25", "none", 4, [], True),
    ("balanced:6:2:25", "rollback", 4, [(0.4, 1)], True),
    ("balanced:6:2:25", "splice", 4, [(0.4, 1), (0.7, 2)], True),
    ("balanced:6:2:25", "replicated:3", 4, [(0.5, 2)], True),
    ("prog:fib:10", "rollback", 4, [(0.5, 1)], True),
    ("skewed:6:3:15", "splice", 8, [(0.3, 2)], True),
]

_IDS = [f"{c[0]}-{c[1]}-{len(c[3])}faults" for c in CASES]


def run_case(workload: str, policy: str, procs: int, fracs, collect_trace: bool):
    wf, _ = build_workload(workload)
    config = SimConfig(n_processors=procs, seed=3)
    faults = FaultSchedule.none()
    if fracs:
        base = run_simulation(
            wf(), config, policy=build_policy(policy), collect_trace=False
        )
        faults = FaultSchedule.of(
            *(Fault(max(1.0, f * base.makespan), n) for f, n in fracs)
        )
    return run_simulation(
        wf(), config, policy=build_policy(policy), faults=faults,
        collect_trace=collect_trace,
    )


def digest(workload, policy, procs, fracs, trace):
    """Canonical observable summary of one run (must match pre-opt core)."""
    r = run_case(workload, policy, procs, fracs, trace)
    m = r.metrics
    return {
        "case": f"{workload}|{policy}|p{procs}|{fracs}",
        "completed": r.completed,
        "value": repr(r.value),
        "verified": r.verified,
        "makespan": r.makespan,
        "tasks": [
            m.tasks_spawned, m.tasks_accepted, m.tasks_completed,
            m.tasks_aborted, m.tasks_reissued, m.twins_created,
        ],
        "steps": [m.steps_total, m.steps_wasted, m.steps_salvaged],
        "checkpoints": [
            m.checkpoints_recorded, m.checkpoints_dropped, m.checkpoint_peak_held,
        ],
        "results": [
            m.results_delivered, m.results_duplicate, m.results_ignored,
            m.results_orphan_rerouted, m.results_salvaged,
        ],
        "messages": [m.messages_total, m.message_hops],
        "trace_len": len(r.trace),
    }


def load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestTraceOnOffParity:
    @pytest.mark.parametrize("case", CASES, ids=_IDS)
    def test_fast_path_changes_only_the_trace(self, case):
        workload, policy, procs, fracs, _ = case
        traced = digest(workload, policy, procs, fracs, True)
        fast = digest(workload, policy, procs, fracs, False)
        assert traced["trace_len"] > 0
        assert fast["trace_len"] == 0
        traced.pop("trace_len")
        fast.pop("trace_len")
        assert traced == fast

    def test_trace_off_really_records_nothing(self):
        result = run_case("balanced:5:2:10", "rollback", 4, [(0.5, 1)], False)
        assert len(result.trace) == 0 and not result.trace.enabled


class TestGoldenDigests:
    def test_fixture_matches_case_list(self):
        golden = load_golden()
        assert len(golden) == len(CASES)

    @pytest.mark.parametrize("index", range(len(CASES)), ids=_IDS)
    def test_run_matches_pre_optimization_digest(self, index):
        golden = load_golden()[index]
        current = digest(*CASES[index])
        assert current == golden, (
            "observable run behaviour diverged from the pre-optimization core; "
            "see the module docstring before regenerating the fixture"
        )


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        for case in CASES:
            fh.write(json.dumps(digest(*case), sort_keys=True) + "\n")
    print(f"regenerated {GOLDEN_PATH}")
