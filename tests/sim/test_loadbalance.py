"""Tests for load-balancing schedulers."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core import NoFaultTolerance
from repro.errors import SchedulingError
from repro.sim import FaultSchedule, TreeWorkload
from repro.sim.loadbalance import make_scheduler
from repro.sim.machine import Machine, run_simulation
from repro.sim.topology import Topology
from repro.util.rng import RngHub
from repro.workloads.trees import balanced_tree, wide_tree


def machine_with(scheduler_name, n=4, workload=None, seed=0):
    return Machine(
        SimConfig(n_processors=n, seed=seed, scheduler=scheduler_name),
        workload if workload is not None else TreeWorkload(wide_tree(24, 60), "wide"),
        NoFaultTolerance(),
    )


class TestMakeScheduler:
    def test_known_names(self):
        topo = Topology("complete", 4)
        for name in ("gradient", "random", "round_robin", "local", "static"):
            assert make_scheduler(name, topo, RngHub(0)).name == name

    def test_unknown_name(self):
        with pytest.raises(SchedulingError):
            make_scheduler("magic", Topology("ring", 3), RngHub(0))


class TestPlacementSpread:
    @pytest.mark.parametrize("name", ["gradient", "random", "round_robin", "static"])
    def test_spreads_wide_fanout(self, name):
        """24 independent leaves must not all land on one processor."""
        m = machine_with(name)
        result = m.run()
        assert result.completed
        used = {
            t.node
            for t in m.instance_registry.values()
            if t.node >= 0 and t.packet.work.tree_node not in (None, 0)
        }
        assert len(used) >= 3

    def test_local_keeps_everything_on_origin(self):
        m = machine_with("local")
        result = m.run()
        assert result.completed
        # with local placement the first processor hosts all real tasks
        used = {t.node for t in m.instance_registry.values() if t.node >= 0}
        assert used == {0}

    def test_gradient_prefers_idle(self):
        m = machine_with("gradient")
        result = m.run()
        util = result.metrics.utilization(result.makespan)
        busy = [u for node, u in util.items() if node >= 0]
        # no processor should be starved on an embarrassingly parallel load
        assert min(busy) > 0.0

    def test_static_is_stamp_deterministic(self):
        placements = []
        for _ in range(2):
            m = machine_with("static")
            m.run()
            placements.append(
                sorted(
                    (str(t.stamp), t.node)
                    for t in m.instance_registry.values()
                    if t.node >= 0
                )
            )
        assert placements[0] == placements[1]


class TestExclusion:
    def test_dead_nodes_never_chosen(self):
        result = run_simulation(
            TreeWorkload(balanced_tree(4, 2, 20), "bal"),
            SimConfig(n_processors=4, seed=0, scheduler="random"),
            policy=NoFaultTolerance(),
            faults=FaultSchedule.single(10_000.0, 1),  # never fires
        )
        assert result.completed

    def test_no_alive_processors_raises(self):
        m = machine_with("gradient", n=2)
        m._start_root_host()
        m.queue.run(until=lambda: m.metrics.tasks_accepted >= 1, max_events=2000)
        for node in m.processors():
            node.kill()
        from repro.core.packets import TaskPacket, ReturnAddress, WorkSpec
        from repro.core.stamps import LevelStamp

        packet = TaskPacket(
            stamp=LevelStamp.of(0, 5),
            work=WorkSpec(kind="tree", tree_node=0),
            parent=ReturnAddress(0, 0),
        )
        with pytest.raises(SchedulingError):
            m.scheduler.place(packet, 0, set())
