"""Golden parity for the RunSpec port of the analysis drivers.

The digests below were captured from the *legacy* drivers at commit
55f2bbd, immediately before ``analysis/experiments.py`` was ported onto
the ``repro.api`` RunSpec path (hand-rolled ``Machine`` loops retired):
sha256 of each rendered table, with workload labels normalized to spec
strings.  The ported sweeps must reproduce every table byte-for-byte —
the port is required to be a pure refactor of the measured surface.

The figure drivers are pinned the other way around: the table each
figure renders through the scenario/RunSpec path (the ``figure`` point
runner behind ``repro exp run figN-*``) must equal the direct
``analysis.figures`` driver output, so the registry path and the legacy
entry point can never drift.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.analysis.experiments import (
    fault_time_sweep,
    multi_fault_run,
    overhead_sweep,
    scaling_sweep,
)
from repro.analysis.report import render_fault_sweep, render_overhead, render_scaling

#: sha256 of each legacy driver's rendered table (see module docstring).
GOLDEN_TABLE_DIGESTS = {
    "overhead": "fd2705a60c079e4c835102981323ef00492819b50c557e6d4ac04450d921df7c",
    "fault": "9a94aa03c680cf294892264b2c04f653f99007a73d3a83ba28f9ff5abf1f884f",
    "scaling": "6046bf8a57588c260245cbc60ee99a0c2597c3dc928873771a3f91c7e425ec3b",
}


def digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestExperimentPortGoldens:
    def test_overhead_sweep_matches_legacy(self):
        table = render_overhead(
            overhead_sweep(
                ["balanced:4:2:60"],
                ["none", "rollback", "splice", "replicated:3"],
                processors=4,
                seed=0,
            )
        )
        assert digest(table) == GOLDEN_TABLE_DIGESTS["overhead"], table

    def test_fault_time_sweep_matches_legacy(self):
        table = render_fault_sweep(
            fault_time_sweep(
                "balanced:4:2:60",
                ["rollback", "splice"],
                fractions=(0.1, 0.3, 0.5, 0.7, 0.9),
                victim=1,
                processors=4,
                seed=0,
            )
        )
        assert digest(table) == GOLDEN_TABLE_DIGESTS["fault"], table

    def test_scaling_sweep_matches_legacy(self):
        table = render_scaling(
            scaling_sweep(
                "wide:48:120",
                policy="none",
                processor_counts=(1, 2, 4, 8),
                seed=0,
            )
        )
        assert digest(table) == GOLDEN_TABLE_DIGESTS["scaling"], table

    def test_multi_fault_run_matches_legacy(self):
        # the legacy driver's observables, captured at the same commit
        result = multi_fault_run(
            "balanced:4:3:40",
            fault_times=[(150.0, 1), (150.0, 4)],
            policy="splice",
            processors=6,
            seed=0,
        )
        assert result.completed and result.verified is True
        assert result.makespan == 1687.0
        assert result.metrics.tasks_reissued == 3


class TestFigureScenarioParity:
    """Each figure's table through the scenario path equals the direct
    driver output — the registry entry *is* the figure driver."""

    @pytest.mark.parametrize(
        "scenario,figure",
        [
            ("fig1-fragmentation", "figure1"),
            ("fig2-grandparents", "figure2"),
            ("fig3-inheritance", "figure3"),
            ("fig5-cases", "figure5"),
            ("fig6-residue", "figure6"),
        ],
    )
    def test_scenario_table_equals_driver_table(self, scenario, figure):
        from repro.analysis import figures
        from repro.exp import run_scenario

        sweep = run_scenario(scenario, workers=1, cache_dir=None)
        (point,) = sweep.points
        report = figures.FIGURES[figure]()
        assert point["result"]["text"] == report.text
        assert point["result"]["ok"] is report.ok is True
        assert point["result"]["title"] == report.title
