"""Tests for the figure reproductions (the paper's artifacts)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import figure1, figure2, figure3, figure5, figure6
from repro.analysis.residue import STATES, measure_windows, residue_sweep
from repro.workloads.figure1 import EXPECTED_CHECKPOINTS, EXPECTED_FRAGMENTS


@pytest.fixture(scope="module")
def fig1():
    return figure1()


class TestFigure1:
    def test_reproduced(self, fig1):
        assert fig1.ok, fig1.text

    def test_fragments(self, fig1):
        assert set(fig1.data["fragments"]) == set(EXPECTED_FRAGMENTS)

    def test_checkpoint_distribution(self, fig1):
        assert fig1.data["checkpoints"] == EXPECTED_CHECKPOINTS

    def test_reissued_tasks(self, fig1):
        assert sorted(fig1.data["reissued"]) == ["B1", "B2", "B3", "B7"]

    def test_text_mentions_processors(self, fig1):
        assert "entry[B]" in fig1.text


class TestFigure2:
    def test_reproduced(self):
        report = figure2()
        assert report.ok, report.text
        assert report.data["pointers"]["B3"] == "A"
        assert report.data["pointers"]["D4"] == "C"


class TestFigure3:
    def test_reproduced(self):
        report = figure3()
        assert report.ok, report.text
        assert "B2" in report.data["twins"]
        assert "D4" in report.data["salvaged"]


class TestFigure5:
    def test_all_cases_reproduced(self):
        report = figure5()
        assert report.ok, report.text
        outcomes = report.data["outcomes"]
        assert sorted(outcomes) == list(range(1, 9))
        assert all(outcomes[n].matches for n in outcomes)


class TestFigure6:
    def test_all_states_residue_free(self):
        report = figure6()
        assert report.ok, report.text
        outcomes = report.data["outcomes"]
        assert {o.state for o in outcomes} == set(STATES)
        assert {o.policy for o in outcomes} == {"rollback", "splice"}
        assert all(o.residue_free for o in outcomes)

    def test_de_states_rollback_aborts_splice_salvages(self):
        # the paper's d/e states: rollback aborts the lingering child C
        # while splice salvages it
        outcomes = figure6().data["outcomes"]
        rollback_de = [o for o in outcomes if o.policy == "rollback" and o.state in "de"]
        splice_de = [o for o in outcomes if o.policy == "splice" and o.state in "de"]
        assert rollback_de and splice_de
        assert all(o.aborted > 0 for o in rollback_de)
        assert all(o.salvaged > 0 for o in splice_de)


class TestResidueWindows:
    def test_windows_monotone(self):
        windows = measure_windows()
        times = [windows.times[s] for s in STATES]
        assert times == sorted(times)
        assert times[-1] < windows.probe_makespan
