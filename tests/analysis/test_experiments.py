"""Tests for the experiment harness (RunSpec-path sweep runners)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    fault_free_makespan,
    fault_time_sweep,
    multi_fault_run,
    overhead_sweep,
    scaling_sweep,
)
from repro.analysis.report import render_fault_sweep, render_overhead, render_scaling
from repro.api import Session

WORKLOAD = "balanced:4:2:25"


class TestOverheadSweep:
    def test_rows_and_rendering(self):
        rows = overhead_sweep([WORKLOAD], ["none", "rollback"], processors=4, seed=0)
        assert len(rows) == 2
        none_row = next(r for r in rows if r.policy == "none")
        roll_row = next(r for r in rows if r.policy == "rollback")
        assert none_row.overhead_vs_none == 1.0
        assert roll_row.checkpoints > 0
        text = render_overhead(rows)
        assert "rollback" in text and "vs none" in text

    def test_record_matches_direct_api_run(self):
        # the sweep reads the canonical record, so its numbers must be
        # identical to a direct Experiment run of the same spec
        from repro.api import Experiment

        (row,) = overhead_sweep([WORKLOAD], ["rollback"], processors=4, seed=0)
        handle = (
            Experiment.workload(WORKLOAD).policy("rollback").processors(4).seed(0).run()
        )
        assert row.makespan == handle.record["makespan"]
        assert row.messages == handle.record["metrics"]["messages_total"]


class TestFaultTimeSweep:
    def test_points_complete_and_correct(self):
        points = fault_time_sweep(
            WORKLOAD, ["rollback", "splice"], fractions=(0.3, 0.7), seed=0
        )
        assert len(points) == 4
        assert all(p.completed and p.correct for p in points)
        assert all(p.slowdown >= 1.0 - 1e-9 for p in points)
        text = render_fault_sweep(points)
        assert "splice" in text

    def test_fault_time_positive(self):
        points = fault_time_sweep(WORKLOAD, ["rollback"], fractions=(0.0001,), seed=0)
        assert points[0].fault_time >= 1.0

    def test_shared_session_memoizes_baselines(self):
        session = Session()
        fault_time_sweep(WORKLOAD, ["rollback"], fractions=(0.3, 0.7), session=session)
        # 2 faulted runs recorded; the baseline is memoized process-wide
        assert len(session.handles) == 2


class TestScalingSweep:
    def test_speedup_monotone_baseline(self):
        points = scaling_sweep(
            "balanced:4:2:60", policy="none", processor_counts=(1, 4), seed=0
        )
        assert points[0].speedup == 1.0
        assert points[1].speedup > 1.0
        assert "speedup" in render_scaling(points)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError, match="processor count"):
            scaling_sweep(WORKLOAD, processor_counts=())


class TestMultiFault:
    def test_runs_with_schedule(self):
        result = multi_fault_run(
            "balanced:4:2:25",
            fault_times=[(150.0, 1), (150.0, 4)],
            policy="splice",
            processors=6,
            seed=0,
        )
        assert result.completed and result.verified is True


class TestFaultFreeMakespan:
    def test_value(self):
        m = fault_free_makespan(WORKLOAD, policy="none", processors=4, seed=0)
        assert m > 0

    def test_stall_raises(self):
        # no fault tolerance + a fault is a stall, but fault-free "none"
        # completes; a bad workload spec surfaces as SpecError instead
        from repro.errors import SpecError

        with pytest.raises(SpecError):
            fault_free_makespan("nope:1:2")
