"""Tests for the experiment harness."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    fault_free_makespan,
    fault_time_sweep,
    multi_fault_run,
    overhead_sweep,
    scaling_sweep,
)
from repro.analysis.report import render_fault_sweep, render_overhead, render_scaling
from repro.config import SimConfig
from repro.core import NoFaultTolerance, RollbackRecovery, SpliceRecovery
from repro.sim import TreeWorkload
from repro.workloads.trees import balanced_tree


def wfactory():
    return TreeWorkload(balanced_tree(4, 2, 25), "bal")


CONFIG = SimConfig(n_processors=4, seed=0)


class TestOverheadSweep:
    def test_rows_and_rendering(self):
        rows = overhead_sweep(
            {"bal": wfactory},
            {"none": NoFaultTolerance, "rollback": RollbackRecovery},
            CONFIG,
        )
        assert len(rows) == 2
        none_row = next(r for r in rows if r.policy == "none")
        roll_row = next(r for r in rows if r.policy == "rollback")
        assert none_row.overhead_vs_none == 1.0
        assert roll_row.checkpoints > 0
        text = render_overhead(rows)
        assert "rollback" in text and "vs none" in text


class TestFaultTimeSweep:
    def test_points_complete_and_correct(self):
        points = fault_time_sweep(
            wfactory,
            CONFIG,
            {"rollback": RollbackRecovery, "splice": SpliceRecovery},
            fractions=(0.3, 0.7),
        )
        assert len(points) == 4
        assert all(p.completed and p.correct for p in points)
        assert all(p.slowdown >= 1.0 - 1e-9 for p in points)
        text = render_fault_sweep(points)
        assert "splice" in text

    def test_fault_time_positive(self):
        points = fault_time_sweep(
            wfactory, CONFIG, {"rollback": RollbackRecovery}, fractions=(0.0001,)
        )
        assert points[0].fault_time >= 1.0


class TestScalingSweep:
    def test_speedup_monotone_baseline(self):
        points = scaling_sweep(
            lambda: TreeWorkload(balanced_tree(4, 2, 60), "bal"),
            CONFIG,
            NoFaultTolerance,
            processor_counts=(1, 4),
        )
        assert points[0].speedup == 1.0
        assert points[1].speedup > 1.0
        assert "speedup" in render_scaling(points)


class TestMultiFault:
    def test_runs_with_schedule(self):
        result = multi_fault_run(
            wfactory,
            CONFIG.with_(n_processors=6),
            SpliceRecovery,
            fault_times=[(150.0, 1), (150.0, 4)],
        )
        assert result.completed and result.verified is True


class TestFaultFreeMakespan:
    def test_value(self):
        m = fault_free_makespan(wfactory, CONFIG, NoFaultTolerance)
        assert m > 0
