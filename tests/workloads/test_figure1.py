"""Tests for the Figure-1 scenario reproduction."""

from __future__ import annotations

import pytest

from repro.core import RollbackRecovery, SpliceRecovery
from repro.workloads.figure1 import (
    EXPECTED_CHECKPOINTS,
    EXPECTED_FRAGMENTS,
    FIGURE1_PLACEMENT,
    PROCESSORS,
    figure1_scenario,
)


@pytest.fixture(scope="module")
def scenario():
    return figure1_scenario()


class TestScenarioStructure:
    def test_seventeen_tasks(self, scenario):
        assert len(scenario.spec) == 17

    def test_placement_by_letter(self, scenario):
        assert FIGURE1_PLACEMENT["B2"] == PROCESSORS["B"]
        assert FIGURE1_PLACEMENT["C4"] == PROCESSORS["C"]

    def test_fragments_match_paper(self, scenario):
        assert set(scenario.fragments()) == set(EXPECTED_FRAGMENTS)

    def test_parent_relationships_from_text(self, scenario):
        """Every parent/child relation the paper states."""
        ids = scenario.ids
        spec = scenario.spec

        def parent_of(name):
            nid = ids[name]
            for pname, pid in ids.items():
                if nid in spec.nodes[pid].children:
                    return pname
            return None

        assert parent_of("B1") == "A1"  # checkpoint for B1 on A
        assert parent_of("B2") == "C1"  # Fig 3: C1 creates B2'
        assert parent_of("B3") == "C1"  # Fig 2: B3's grandparent is A1
        assert parent_of("B5") == "C4"  # "C4 holds the checkpointing data for B5"
        assert parent_of("D4") == "B2"  # Fig 2: D4's grandparent is C1
        assert parent_of("A2") == "B2"  # "B2 will generate tasks equivalent to D4 and A2"


class TestRollbackRun:
    def test_reissues_exactly_the_papers_checkpoints(self, scenario):
        machine, result = scenario.run(RollbackRecovery())
        assert result.completed and result.verified is True
        names = {}
        for rec in result.trace.of_kind("task_accepted"):
            names.setdefault(rec.detail["stamp"], rec.detail["work"])
        reissued_nodes = sorted(
            int(names[r.detail["stamp"]].split()[1].rstrip(">"))
            for r in result.trace.of_kind("recovery_reissue")
        )
        expected_names = sorted(
            t for tasks in EXPECTED_CHECKPOINTS.values() for t in tasks
        )
        expected_ids = sorted(scenario.ids[n] for n in expected_names)
        assert reissued_nodes == expected_ids

    def test_all_tasks_resident_at_fault(self, scenario):
        machine, result = scenario.run(RollbackRecovery())
        accepted_before = {
            r.detail["work"]
            for r in result.trace.of_kind("task_accepted")
            if r.time <= scenario.fault_time
        }
        assert len(accepted_before) == 17


class TestSpliceRun:
    def test_d4_salvaged(self, scenario):
        """Figure 3: twin B2' inherits orphan D4's result."""
        machine, result = scenario.run(SpliceRecovery())
        assert result.completed and result.verified is True
        d4_stamp = None
        for rec in result.trace.of_kind("task_accepted"):
            if rec.detail["work"] == f"<tree {scenario.ids['D4']}>":
                d4_stamp = rec.detail["stamp"]
                break
        rerouted = [r.detail["stamp"] for r in result.trace.of_kind("result_orphan_rerouted")]
        salvaged = [r.detail["stamp"] for r in result.trace.of_kind("result_salvaged")]
        assert d4_stamp in rerouted
        assert d4_stamp in salvaged

    def test_b5_not_reissued_topmost_rule(self, scenario):
        """B5's packet is retained by C4, but B2's checkpoint subsumes it:
        'recovery of B5 is not fruitful … redo only the most ancient
        ancestor and ignore the rest.'"""
        machine, result = scenario.run(SpliceRecovery())
        names = {}
        for rec in result.trace.of_kind("task_accepted"):
            names.setdefault(rec.detail["stamp"], rec.detail["work"])
        b5_work = f"<tree {scenario.ids['B5']}>"
        reissued_works = {
            names.get(r.detail["stamp"])
            for r in result.trace.of_kind("recovery_reissue")
        }
        assert b5_work not in reissued_works
