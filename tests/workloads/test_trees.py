"""Tests for synthetic tree generators."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.trees import (
    balanced_tree,
    chain_tree,
    random_tree,
    skewed_tree,
    wide_tree,
)


class TestBalanced:
    def test_size(self):
        spec = balanced_tree(3, 2)
        assert len(spec) == 2**4 - 1

    def test_depth(self):
        assert balanced_tree(4, 2).depth() == 4

    def test_depth_zero_single_node(self):
        spec = balanced_tree(0, 2)
        assert len(spec) == 1
        assert spec.depth() == 0

    def test_fanout_three(self):
        spec = balanced_tree(2, 3)
        assert len(spec) == 1 + 3 + 9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            balanced_tree(-1, 2)
        with pytest.raises(ValueError):
            balanced_tree(2, 0)


class TestChain:
    def test_size_and_depth(self):
        spec = chain_tree(10)
        assert len(spec) == 10
        assert spec.depth() == 9

    def test_each_node_one_child(self):
        spec = chain_tree(5)
        fanouts = sorted(len(n.children) for n in spec.nodes.values())
        assert fanouts == [0, 1, 1, 1, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain_tree(0)


class TestWide:
    def test_shape(self):
        spec = wide_tree(12)
        assert len(spec) == 13
        assert spec.depth() == 1
        assert len(spec.nodes[0].children) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            wide_tree(0)


class TestSkewed:
    def test_size(self):
        # each level adds fanout nodes: (fanout-1) leaves + 1 spine
        spec = skewed_tree(4, 3)
        assert len(spec) == 1 + 4 * 3

    def test_depth(self):
        assert skewed_tree(5, 3).depth() == 5


class TestRandom:
    def test_deterministic(self):
        a = random_tree(seed=7, target_tasks=30)
        b = random_tree(seed=7, target_tasks=30)
        assert a.nodes.keys() == b.nodes.keys()
        assert all(a.nodes[k] == b.nodes[k] for k in a.nodes)

    def test_seed_sensitivity(self):
        a = random_tree(seed=1, target_tasks=30)
        b = random_tree(seed=2, target_tasks=30)
        assert any(a.nodes.get(k) != b.nodes.get(k) for k in a.nodes) or len(a) != len(b)

    def test_size_bounded_by_target(self):
        spec = random_tree(seed=3, target_tasks=25)
        assert 1 <= len(spec) <= 25

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_tree(seed=0, target_tasks=0)

    @given(st.integers(min_value=0, max_value=500))
    def test_root_is_zero_and_connected(self, seed):
        spec = random_tree(seed=seed, target_tasks=20)
        assert 0 in spec.nodes
        # every node reachable from the root exactly once (tree property)
        seen = set()

        def walk(nid):
            assert nid not in seen
            seen.add(nid)
            for child in spec.nodes[nid].children:
                walk(child)

        walk(0)
        assert seen == set(spec.nodes)

    @given(st.integers(min_value=0, max_value=200))
    def test_work_in_range(self, seed):
        spec = random_tree(seed=seed, target_tasks=15, work_range=(5, 30))
        assert all(5 <= n.work <= 30 for n in spec.nodes.values())
