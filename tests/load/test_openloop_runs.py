"""End-to-end open-loop runs: arrivals, congestion, metrics, oracles.

Three guarantees:

1. **Liveness under load**: every arrival process and every overflow
   policy completes the full injected stream and verifies against the
   per-tree oracles — congestion shedding must recover every shed
   packet, never lose a tree.
2. **Guarded fast path**: a spec without arrivals takes the exact
   pre-subsystem path — no ``arrivals``/``load`` record keys, no
   congestion hooks bound, byte-identical records across runs (the
   golden-digest suites pin the bytes against history; this file pins
   the mechanism).
3. **Oracle horizon**: open-loop runs get an absolute recovery horizon
   (detection/ack scale), not a multiple of the unbounded open-loop
   makespan which would make ``bounded-recovery`` a degenerate pass.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment, RunSpec, execute
from repro.check import CheckConfig, evaluate
from repro.check.oracles import resolve_horizon
from repro.config import CostModel
from repro.load import OVERFLOW_POLICIES
from repro.report.aggregate import numeric_fields
from repro.util.jsonio import canonical_dumps

_LOAD_SUMMARY_KEYS = {
    "arrivals", "completed", "horizon", "sojourn_p50", "sojourn_p95",
    "sojourn_p99", "sojourn_mean", "goodput", "queue_depth_mean",
    "queue_depth_max", "dropped", "backpressure_events",
}


def _openloop_spec(arrivals: str, policy: str = "rollback", seed: int = 5) -> RunSpec:
    return (
        Experiment.workload("balanced:3:2:10")
        .policy(policy)
        .processors(4)
        .seed(seed)
        .arrivals(arrivals)
        .build()
    )


class TestArrivalProcessesRun:
    @pytest.mark.parametrize(
        "arrivals",
        [
            "poisson:rate=0.015,horizon=1000,tasks=6",
            "bursty:rate=0.06,on=150,off=250,horizon=1000,tasks=6",
            "diurnal:peak=0.03,horizon=1000,tasks=6",
        ],
    )
    def test_completes_and_verifies(self, arrivals):
        handle = execute(_openloop_spec(arrivals))
        assert handle.completed
        assert handle.verified is True
        load = handle.record["load"]
        assert set(load) == _LOAD_SUMMARY_KEYS
        assert load["arrivals"] == load["completed"] > 0
        assert handle.record["arrivals"] == arrivals
        assert handle.metrics.load_arrivals == load["arrivals"]

    def test_zero_arrival_stream_completes_with_value_zero(self):
        # An open-loop run whose sampled schedule happens to be empty
        # must still terminate cleanly (the host completes immediately).
        handle = execute(_openloop_spec("poisson:rate=0.0001,horizon=10"))
        assert handle.completed and handle.verified is True
        assert handle.record["load"]["arrivals"] == 0
        assert handle.record["value"] == "0"

    def test_same_seed_rerun_is_byte_identical(self):
        spec = _openloop_spec("poisson:rate=0.02,horizon=800,tasks=6,cap=4,overflow=drop")
        a = execute(spec).record
        b = execute(spec).record
        assert canonical_dumps(a) == canonical_dumps(b)

    def test_load_summary_flows_into_report_fields(self):
        handle = execute(_openloop_spec("poisson:rate=0.015,horizon=1000,tasks=6"))
        fields = numeric_fields(handle.record)
        assert "load.sojourn_p95" in fields
        assert "load.goodput" in fields


class TestOverflowPolicies:
    _CONGESTED = "poisson:rate=0.03,horizon=1000,tasks=8,cap=4,overflow={}"

    @pytest.mark.parametrize("overflow", OVERFLOW_POLICIES)
    def test_congested_run_still_verifies(self, overflow):
        handle = execute(_openloop_spec(self._CONGESTED.format(overflow)))
        assert handle.completed
        assert handle.verified is True
        load = handle.record["load"]
        assert load["completed"] == load["arrivals"]

    def test_drop_and_tail_shed_backpressure_defers(self):
        by_policy = {
            overflow: execute(_openloop_spec(self._CONGESTED.format(overflow))).record["load"]
            for overflow in OVERFLOW_POLICIES
        }
        assert by_policy["drop"]["dropped"] > 0
        assert by_policy["tail"]["dropped"] > 0
        assert by_policy["backpressure"]["dropped"] == 0
        assert by_policy["backpressure"]["backpressure_events"] > 0
        assert by_policy["drop"]["backpressure_events"] == 0

    def test_uncapped_run_binds_no_congestion(self):
        handle = execute(_openloop_spec("poisson:rate=0.015,horizon=600"))
        assert handle.record["load"]["dropped"] == 0
        assert handle.record["load"]["backpressure_events"] == 0


class TestClosedLoopFastPath:
    def test_record_has_no_load_keys(self):
        spec = Experiment.workload("balanced:3:2:10").policy("rollback").seed(0).build()
        record = execute(spec).record
        assert "arrivals" not in record
        assert "load" not in record
        assert record["metrics"].get("load_arrivals", 0) == 0

    def test_runspec_json_omits_arrivals_when_empty(self):
        spec = Experiment.workload("balanced:3:2:10").policy("rollback").seed(0).build()
        assert "arrivals" not in spec.to_json()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_runspec_json_roundtrips_arrivals(self):
        spec = _openloop_spec("bursty:rate=0.06,on=150,off=250,horizon=1000,cap=3,overflow=tail")
        doc = spec.to_json()
        assert doc["arrivals"] == spec.arrivals.to_spec_str()
        assert RunSpec.from_json(doc) == spec

    def test_machine_hooks_stay_unbound(self):
        from repro.config import SimConfig
        from repro.sim.machine import Machine
        from repro.api import WorkloadSpec

        wfactory, _ = WorkloadSpec.parse("balanced:2:2:5").build()
        machine = Machine(SimConfig(n_processors=4, seed=0), wfactory())
        assert machine.load is None
        assert all(node.congestion is None for node in machine.nodes.values())


class TestOpenLoopCheckHorizon:
    def test_explicit_horizon_time_wins(self):
        config = CheckConfig(horizon_frac=3.0, horizon_time=777.0)
        assert resolve_horizon(config, base_makespan=10_000.0) == 777.0
        assert resolve_horizon(config, base_makespan=10_000.0, open_loop=True) == 777.0

    def test_open_loop_default_is_detection_scale_not_makespan(self):
        cost = CostModel()
        scale = cost.ack_timeout + cost.detection_timeout + cost.detector_delay
        config = CheckConfig(horizon_frac=3.0)
        assert resolve_horizon(config, base_makespan=50_000.0, open_loop=True) == 3.0 * scale
        assert resolve_horizon(config, base_makespan=50_000.0) == 150_000.0

    def test_config_json_omits_horizon_time_when_unset(self):
        assert "horizon_time" not in CheckConfig().to_json()
        assert CheckConfig(horizon_time=500.0).to_json()["horizon_time"] == 500.0

    def test_oracles_judge_openloop_run_at_absolute_horizon(self):
        spec = _openloop_spec(
            "poisson:rate=0.03,horizon=1000,tasks=8,cap=4,overflow=drop"
        )
        handle = execute(spec, collect_trace=True)
        report = evaluate(handle, CheckConfig())
        cost = CostModel()
        scale = cost.ack_timeout + cost.detection_timeout + cost.detector_delay
        assert report.horizon == 3.0 * scale
        # Not the makespan-derived bound the closed-loop path would use.
        assert report.horizon != 3.0 * max(handle.makespan, 1.0)
        assert report.ok
