"""Determinism and shape properties of the arrival sampler.

``sample_arrivals`` is a pure function of ``(spec, seed)``: the whole
open-loop subsystem's byte-determinism (sweep digests, CI reruns,
replication reports) reduces to this property plus the simulator's own
determinism, so it gets pinned directly here.
"""

from __future__ import annotations

from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load import Arrival, ArrivalSpec, sample_arrivals
from repro.load.process import MAX_ARRIVALS
from repro.util.jsonio import canonical_dumps

_SPECS = (
    "poisson:rate=0.02,horizon=1000",
    "poisson:rate=0.005,horizon=4000,tasks=20",
    "bursty:rate=0.08,on=150,off=250,horizon=1500",
    "diurnal:peak=0.04,horizon=2000,tasks=3",
)


@settings(deadline=None)
@given(
    text=st.sampled_from(_SPECS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_same_seed_is_byte_identical(text, seed):
    spec = ArrivalSpec.parse(text)
    first = sample_arrivals(spec, seed)
    second = sample_arrivals(spec, seed)
    assert first == second
    # Byte-identical through canonical JSON, not merely __eq__.
    assert canonical_dumps([asdict(a) for a in first]) == canonical_dumps(
        [asdict(a) for a in second]
    )


@settings(deadline=None)
@given(
    text=st.sampled_from(_SPECS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_schedule_shape(text, seed):
    spec = ArrivalSpec.parse(text)
    horizon = spec.resolved()["horizon"]
    mean_tasks = spec.resolved()["tasks"]
    lo, hi = max(1, mean_tasks - mean_tasks // 2), mean_tasks + mean_tasks // 2
    arrivals = sample_arrivals(spec, seed)
    assert len(arrivals) <= MAX_ARRIVALS
    last = 0.0
    for k, a in enumerate(arrivals):
        assert isinstance(a, Arrival)
        assert a.index == k
        assert last <= a.time < horizon
        assert lo <= a.tasks <= hi
        assert 0 <= a.tree_seed < 2**31
        last = a.time


def test_different_seeds_differ():
    spec = ArrivalSpec.parse("poisson:rate=0.02,horizon=1000")
    schedules = {sample_arrivals(spec, seed) for seed in range(8)}
    assert len(schedules) == 8


def test_different_processes_differ_under_one_seed():
    texts = (
        "poisson:rate=0.02,horizon=1000",
        "bursty:rate=0.02,on=200,off=200,horizon=1000",
        "diurnal:peak=0.02,horizon=1000",
    )
    times = {tuple(a.time for a in sample_arrivals(ArrivalSpec.parse(t), 7)) for t in texts}
    assert len(times) == 3


def test_empty_spec_samples_nothing():
    assert sample_arrivals(ArrivalSpec(), 0) == ()
