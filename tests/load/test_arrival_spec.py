"""Grammar and round-trip properties for :class:`ArrivalSpec`.

The spec-string form is the address of an open-loop regime everywhere —
CLI flags, scenario axes, sweep cache keys, ledger run ids — so
``parse`` / ``to_spec_str`` must be a normal form: parsing any
spelling of a spec and re-rendering it is a fixed point, and the JSON
document round-trips to the identical object.  Hypothesis drives the
full grammar (every process, every parameter subset, shuffled
parameter order); the example-based tests pin the documented
diagnostics.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.load import (
    ARRIVAL_PROCESSES,
    OVERFLOW_POLICIES,
    PROCESSES,
    ArrivalSpec,
)


class TestParse:
    def test_empty_spec_is_falsy_closed_loop(self):
        spec = ArrivalSpec.parse("")
        assert not spec
        assert spec.to_spec_str() == ""
        assert spec.expected_arrivals() == 0.0
        assert spec.build() is None

    def test_params_canonicalize_to_declaration_order(self):
        spec = ArrivalSpec.parse("poisson:horizon=1500,rate=0.01")
        assert spec.to_spec_str() == "poisson:rate=0.01,horizon=1500"

    def test_only_given_params_render(self):
        spec = ArrivalSpec.parse("poisson:rate=0.01,horizon=1500")
        assert "tasks" not in spec.to_spec_str()
        assert spec.resolved()["tasks"] == 8  # default still applies

    def test_unknown_process(self):
        with pytest.raises(SpecError, match="unknown arrival process"):
            ArrivalSpec.parse("pareto:rate=1,horizon=10")

    def test_unknown_parameter(self):
        with pytest.raises(SpecError, match="unknown parameter"):
            ArrivalSpec.parse("poisson:rate=1,horizon=10,burst=3")

    def test_duplicate_parameter(self):
        with pytest.raises(SpecError, match="duplicate parameter"):
            ArrivalSpec.parse("poisson:rate=1,rate=2,horizon=10")

    def test_missing_required_parameter(self):
        with pytest.raises(SpecError, match="requires parameter"):
            ArrivalSpec.parse("bursty:rate=0.05,horizon=100")  # no on/off

    def test_malformed_pair(self):
        with pytest.raises(SpecError, match="key=value"):
            ArrivalSpec.parse("poisson:rate")

    def test_non_numeric_value(self):
        with pytest.raises(SpecError, match="expected a number"):
            ArrivalSpec.parse("poisson:rate=fast,horizon=10")

    def test_bad_overflow_choice(self):
        with pytest.raises(SpecError) as err:
            ArrivalSpec.parse("poisson:rate=1,horizon=10,overflow=explode")
        assert err.value.allowed == OVERFLOW_POLICIES

    def test_error_positions_point_into_the_spec(self):
        text = "poisson:rate=1,horizon=10,zzz=3"
        with pytest.raises(SpecError) as err:
            ArrivalSpec.parse(text)
        pos = err.value.position
        assert text[pos:].startswith("zzz")


class TestValidate:
    def test_nonpositive_rate(self):
        with pytest.raises(SpecError, match="must be > 0"):
            ArrivalSpec.parse("poisson:rate=0,horizon=10").validate()

    def test_nonpositive_horizon(self):
        with pytest.raises(SpecError, match="must be > 0"):
            ArrivalSpec.parse("diurnal:peak=0.1,horizon=-5").validate()

    def test_tiny_tree(self):
        with pytest.raises(SpecError, match="tasks"):
            ArrivalSpec.parse("poisson:rate=0.1,horizon=10,tasks=0").validate()

    def test_expected_arrival_budget(self):
        with pytest.raises(SpecError, match="expected arrivals"):
            ArrivalSpec.parse("poisson:rate=100,horizon=1000").validate()

    def test_registered_processes_all_validate(self):
        for text in (
            "poisson:rate=0.01,horizon=1000",
            "bursty:rate=0.05,on=100,off=300,horizon=1000",
            "diurnal:peak=0.02,horizon=1000,cap=4,overflow=backpressure",
        ):
            ArrivalSpec.parse(text).validate()


# -- generated full-grammar round trips ---------------------------------------


def _value_strategy(info):
    if info.kind == "choice":
        return st.sampled_from(info.choices)
    if info.kind == "int":
        return st.integers(min_value=0, max_value=500)
    return st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def arrival_specs(draw):
    """A random spelling of a random spec over the full grammar.

    Returns ``(text, canonical_params)`` where ``text`` lists the given
    parameters in a *shuffled* order, so parsing must canonicalize.
    """
    process = draw(st.sampled_from(ARRIVAL_PROCESSES))
    table = PROCESSES[process]
    given = {}
    for name, info in table.items():
        if info.required or draw(st.booleans()):
            given[name] = draw(_value_strategy(info))
    items = draw(st.permutations(sorted(given)))
    text = process + ":" + ",".join(
        f"{k}={given[k] if isinstance(given[k], str) else repr(given[k])}"
        for k in items
    )
    return text, process, given


@given(arrival_specs())
def test_full_grammar_roundtrips_byte_identically(case):
    text, process, given = case
    spec = ArrivalSpec.parse(text)
    assert spec.process == process
    assert dict(spec.params) == given
    # Declaration order, regardless of the input spelling.
    order = list(PROCESSES[process])
    assert [k for k, _ in spec.params] == [k for k in order if k in given]
    # Spec-string normal form.
    canonical = spec.to_spec_str()
    assert ArrivalSpec.parse(canonical) == spec
    assert ArrivalSpec.parse(canonical).to_spec_str() == canonical
    # JSON round trip.
    assert ArrivalSpec.from_json(spec.to_json()) == spec


@given(arrival_specs())
def test_resolved_overlays_defaults_without_mutating_params(case):
    text, process, given = case
    spec = ArrivalSpec.parse(text)
    resolved = spec.resolved()
    assert set(resolved) == set(PROCESSES[process])
    for key, value in given.items():
        assert resolved[key] == value
    assert dict(spec.params) == given  # resolution is non-destructive
